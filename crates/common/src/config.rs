//! Configuration for every layer of the system.
//!
//! The benchmark harness sweeps these knobs to regenerate the paper's
//! figures (number of servers, DBT technique ablations, network model), and
//! the ablation experiments (F4, F8 in DESIGN.md) are expressed purely as
//! configurations of [`DbtConfig`].

// NOTE: configurations were previously serde-derived; the offline build has
// no serde, and the only consumer (benchmark reports) serializes via the
// hand-rolled JSON writer in `yesquel-bench`, so the derives were dropped.

/// How splits of over-full or overloaded DBT nodes are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitMode {
    /// The client that detects the over-full node performs the split
    /// synchronously inside its own transaction (simple, but the unlucky
    /// client pays the split latency).
    Synchronous,
    /// The client only marks the node as needing a split; a per-server
    /// splitter task performs the split as its own transaction in the
    /// background.  This is the paper's design: ordinary operations never
    /// pay split latency.
    Delegated,
}

/// Configuration of the distributed balanced tree (YDBT).
#[derive(Debug, Clone, PartialEq)]
pub struct DbtConfig {
    /// Maximum number of cells in a leaf node before it must split.
    pub leaf_max_cells: usize,
    /// Maximum number of children of an inner node before it must split.
    pub inner_max_children: usize,
    /// Whether clients cache inner nodes.  Disabling this reproduces the
    /// "no caching" ablation: every operation walks from the root and the
    /// root's server becomes a bottleneck.
    pub cache_inner_nodes: bool,
    /// Whether clients may start a search from the deepest cached node and
    /// back up on a fence miss ("back-down search").  If disabled while
    /// caching is enabled, stale cache entries force a restart from the
    /// root instead of a local back-up.
    pub back_down_search: bool,
    /// How splits are executed.
    pub split_mode: SplitMode,
    /// Whether nodes are also split when they become access hot spots
    /// ("load splits"), not only when they exceed their size bound.
    pub load_splits: bool,
    /// Number of accesses within one load-tracking window that marks a leaf
    /// as hot and eligible for a load split.
    pub load_split_threshold: u64,
    /// Whether hot nodes may be migrated to the least-loaded server after a
    /// load split.
    pub migrate_hot_nodes: bool,
    /// Whether nodes the load tracker flags as *read*-hot gain replicas on
    /// other servers (read-any/write-all).  Write-hot nodes still load-split;
    /// read-hot nodes replicate instead, so point reads of the hot node
    /// spread over `replica_factor + 1` servers.  A no-op on single-server
    /// deployments (there is nowhere to replicate to).
    pub replicate_hot_nodes: bool,
    /// Number of replicas a promoted hot node gains, capped at
    /// `num_servers - 1` at promotion time (one copy per distinct server).
    pub replica_factor: usize,
    /// Maximum number of search restarts before an operation reports an
    /// internal error (guards against livelock under adversarial staleness).
    pub max_search_restarts: usize,
}

impl Default for DbtConfig {
    fn default() -> Self {
        DbtConfig {
            leaf_max_cells: 64,
            inner_max_children: 64,
            cache_inner_nodes: true,
            back_down_search: true,
            split_mode: SplitMode::Delegated,
            load_splits: true,
            load_split_threshold: 2000,
            migrate_hot_nodes: true,
            replicate_hot_nodes: true,
            replica_factor: 2,
            max_search_restarts: 64,
        }
    }
}

impl DbtConfig {
    /// Configuration for the "no client caching" ablation (F4).
    pub fn ablation_no_cache() -> Self {
        DbtConfig {
            cache_inner_nodes: false,
            back_down_search: false,
            ..Self::default()
        }
    }

    /// Configuration for the "no back-down search" ablation (F4): caching is
    /// kept, but a stale cache entry forces a restart from the root.
    pub fn ablation_no_back_down() -> Self {
        DbtConfig {
            back_down_search: false,
            ..Self::default()
        }
    }

    /// Configuration for the "no load splits" ablation (F4, F8): all
    /// load-driven reorganisation off — no load splits, no hot-node
    /// migration, no hot-node replication.
    pub fn ablation_no_load_splits() -> Self {
        DbtConfig {
            load_splits: false,
            migrate_hot_nodes: false,
            replicate_hot_nodes: false,
            ..Self::default()
        }
    }

    /// Configuration for the "no hot-node replication" ablation: load splits
    /// stay on, but read-hot nodes are never promoted to replica sets.
    pub fn ablation_no_replication() -> Self {
        DbtConfig {
            replicate_hot_nodes: false,
            ..Self::default()
        }
    }

    /// Configuration with synchronous (client-side) splits, used to measure
    /// the benefit of delegated splits.
    pub fn ablation_sync_splits() -> Self {
        DbtConfig {
            split_mode: SplitMode::Synchronous,
            ..Self::default()
        }
    }
}

/// When a storage server's write-ahead log forces appended records to disk.
///
/// Orthogonal to *whether* a server logs at all (that is
/// [`KvConfig::wal_dir`]): the policy only governs when an append is
/// considered durable enough to acknowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFsyncPolicy {
    /// Every append fsyncs before the operation is acknowledged.  Strongest
    /// guarantee, one disk sync per commit.
    Always,
    /// Group commit: an appender waits up to `window_us` microseconds for
    /// concurrent committers to pile in, then one fsync covers the whole
    /// group.  Same guarantee as `Always` once the append call returns —
    /// the ack still waits for the sync — at a fraction of the fsyncs under
    /// concurrency, traded against up to `window_us` of added commit
    /// latency.
    Group {
        /// How long the sync leader waits for the group to grow.
        window_us: u64,
    },
    /// Appends are buffered OS-side and never explicitly synced (checkpoint
    /// and segment rotation still sync).  An acknowledged commit can vanish
    /// in a power loss; only suitable when durability is externally
    /// guaranteed or deliberately waived (benchmarking the log's CPU cost).
    Off,
}

/// How the 2PC coordinator issues its per-participant RPC rounds (the
/// prepare fan-out, the best-effort secondary commits, and abort fan-outs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitFanout {
    /// Ask the transport whether parallelism pays
    /// (`Transport::fanout_profitable`): worker-thread transports and
    /// latency-sleeping or fault-injecting ones say yes; the plain direct
    /// transport says no, keeping the single-threaded hot path free of
    /// thread-pool overhead.
    #[default]
    Auto,
    /// Always visit participants one at a time (the pre-PR-8 behaviour).
    Serial,
    /// Always fan out concurrently, regardless of transport.
    Parallel,
}

/// Configuration of the transactional key-value store.
#[derive(Debug, Clone, PartialEq)]
pub struct KvConfig {
    /// Number of committed versions of each object retained before the
    /// garbage collector trims the version chain (the newest version is
    /// always retained).
    pub gc_keep_versions: usize,
    /// Maximum number of times a prepare retries acquiring a lock before the
    /// transaction aborts with [`crate::Error::LockTimeout`].
    pub lock_acquire_retries: usize,
    /// Microseconds to back off between lock-acquire retries (only used by
    /// the threaded transport; the direct transport retries immediately).
    pub lock_backoff_us: u64,
    /// If true, single-server transactions skip the prepare phase and commit
    /// in one round trip (the standard one-phase-commit optimisation).
    pub one_phase_commit: bool,
    /// Maximum number of attempts for one RPC (first try plus retries)
    /// before the client gives up with [`crate::Error::Timeout`] /
    /// [`crate::Error::Unavailable`].  Every request is safe to retry:
    /// reads and timestamp operations are idempotent, and prepare / commit /
    /// abort are deduplicated server-side by transaction id.
    pub rpc_max_attempts: usize,
    /// Base backoff, in microseconds, between RPC retries.  Doubled per
    /// attempt (capped at [`KvConfig::rpc_backoff_cap_us`]) with
    /// deterministic jitter so concurrent clients do not retry in lockstep.
    pub rpc_backoff_us: u64,
    /// Upper bound on the per-retry backoff, in microseconds.
    pub rpc_backoff_cap_us: u64,
    /// Extra attempt budget for the commit-point RPC of a two-phase commit
    /// (the commit to the primary participant).  Once every participant has
    /// prepared, the cheapest way out of an outage is to keep knocking on
    /// the primary: giving up there surfaces the expensive
    /// [`crate::Error::Indeterminate`].
    pub commit_resolve_attempts: usize,
    /// Lease, in microseconds, granted to the coordinator by each prepare.
    /// A participant that is still prepared after the lease expires presumes
    /// the coordinator dead and runs the reaper protocol (the primary
    /// participant aborts; the others adopt the primary's outcome).  Must
    /// comfortably exceed the worst-case prepare-to-commit latency.
    pub prepare_lease_us: u64,
    /// Minimum interval, in microseconds, between reaper passes piggybacked
    /// on request processing at a server.
    pub reap_interval_us: u64,
    /// Number of per-server transaction outcomes (committed/aborted)
    /// retained for deduplicating retried or duplicated prepare / commit /
    /// abort messages.  Bounded FIFO; must exceed the number of commits that
    /// can land between a message and its last retry by a wide margin.
    pub txn_outcome_retention: usize,
    /// Directory under which each storage server keeps its write-ahead log
    /// (server `i` logs in `<wal_dir>/server-<i>`).  `None` — the default —
    /// runs the store purely in memory, exactly as before durability was
    /// added: no logging, no recovery, zero overhead on the hot paths.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Fsync policy of the write-ahead log; ignored when `wal_dir` is
    /// `None`.
    pub wal_fsync: WalFsyncPolicy,
    /// How the 2PC coordinator's per-participant RPC rounds are issued.
    pub commit_fanout: CommitFanout,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            gc_keep_versions: 8,
            lock_acquire_retries: 100,
            lock_backoff_us: 50,
            one_phase_commit: true,
            rpc_max_attempts: 5,
            rpc_backoff_us: 100,
            rpc_backoff_cap_us: 10_000,
            commit_resolve_attempts: 12,
            prepare_lease_us: 500_000,
            reap_interval_us: 50_000,
            txn_outcome_retention: 4_096,
            wal_dir: None,
            wal_fsync: WalFsyncPolicy::Group { window_us: 100 },
            commit_fanout: CommitFanout::Auto,
        }
    }
}

impl KvConfig {
    /// A configuration with short deadlines, leases and backoffs, sized for
    /// fault-injection tests: failed RPCs give up in microseconds instead of
    /// milliseconds and orphaned prepares are reaped almost immediately, so
    /// a chaos run converges quickly.  Not meant for production-shaped
    /// benchmarks (the lease is far too short for a loaded commit path).
    pub fn impatient() -> Self {
        KvConfig {
            lock_acquire_retries: 40,
            lock_backoff_us: 20,
            rpc_max_attempts: 4,
            rpc_backoff_us: 20,
            rpc_backoff_cap_us: 200,
            commit_resolve_attempts: 6,
            prepare_lease_us: 3_000,
            reap_interval_us: 300,
            txn_outcome_retention: 4_096,
            ..Self::default()
        }
    }
}

/// Configuration of the simulated network between clients and storage
/// servers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetConfig {
    /// One-way latency, in microseconds, charged to every RPC by the
    /// network model.  Zero disables latency simulation (throughput mode).
    pub one_way_latency_us: u64,
    /// Bytes per microsecond of modelled bandwidth; 0 disables the
    /// bandwidth term.
    pub bytes_per_us: u64,
    /// If true, the latency is actually slept (useful for latency
    /// experiments); if false it is only accounted in the simulated-time
    /// counters (useful for throughput experiments).
    pub sleep_latency: bool,
    /// Modelled per-request service time, in microseconds, spent *on a
    /// server worker thread* for every transport-level request.  Only
    /// meaningful (and only slept) on the threaded transport with
    /// `sleep_latency` set: each request then occupies one of the server's
    /// workers for this long, so per-server throughput is capped at
    /// `workers_per_server / service_time` regardless of host CPU count.
    /// This is what lets a scale-out experiment show server capacity on a
    /// small machine — the bottleneck is slept time, not host cores.  A
    /// batched frame counts as one request, so coalescing genuinely saves
    /// server capacity.  Zero disables the term.
    pub service_time_us: u64,
}

impl NetConfig {
    /// A model of an intra-datacenter network: 50us one-way latency and
    /// roughly 10 Gbit/s of bandwidth, accounted but not slept.
    pub fn datacenter() -> Self {
        NetConfig {
            one_way_latency_us: 50,
            bytes_per_us: 1250,
            sleep_latency: false,
            service_time_us: 0,
        }
    }
}

/// Configuration of the request-batching transport decorator.
///
/// When present on a [`YesquelConfig`], client requests to the same server
/// that arrive within `window_us` of each other are coalesced into one
/// multi-request frame — one transport round trip, one network-model charge —
/// mirroring the write-ahead log's group commit on the RPC plane.  Only pays
/// off with several client threads; `None` (the default) keeps the
/// single-threaded request path untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcBatchConfig {
    /// How long the first request of a batch waits for companions, in
    /// microseconds.  Zero still coalesces whatever is already queued.
    pub window_us: u64,
    /// Maximum number of requests per frame (at least 2).
    pub max_batch: usize,
    /// Nagle-style cross-call linger: if the collection window closed with
    /// **no** companions, the leader waits up to this much longer for a
    /// later call to arrive before shipping solo.  Raises batch occupancy at
    /// moderate load (where requests just miss each other's windows) at the
    /// cost of added latency on a genuinely idle connection.  Zero — the
    /// default — disables the second wait.
    pub linger_us: u64,
}

impl Default for RpcBatchConfig {
    fn default() -> Self {
        RpcBatchConfig {
            window_us: 50,
            max_batch: 16,
            linger_us: 0,
        }
    }
}

/// Observability knobs applied to a deployment's stats registry at build
/// time (see `yesquel_obs::Obs`; they can also be flipped at runtime via
/// `StatsRegistry::obs`).
///
/// Everything defaults to **off**, which the fast paths rely on: with
/// timing off and sampling off, instrumentation costs one relaxed atomic
/// load per site — no clock reads, no allocations (a counter-asserted
/// property, see the `obs` integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record latency histograms (SQL statement latency, KV commit phases,
    /// RPC queue/service time, WAL append/fsync, …).  Each enabled site
    /// costs two clock reads per operation.
    pub timing: bool,
    /// Sample 1 in N operations into an op-scoped trace; 0 disables
    /// sampling.  Sampled traces slower than `slow_threshold_us` land in
    /// the slow-op ring.
    pub trace_sample_every: u32,
    /// Completed traces at least this slow (µs) are kept in the slow-op
    /// ring buffer.
    pub slow_threshold_us: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            timing: false,
            trace_sample_every: 0,
            slow_threshold_us: 1_000,
        }
    }
}

/// Top-level configuration of a Yesquel deployment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct YesquelConfig {
    /// Number of storage servers in the cluster.
    pub num_servers: usize,
    /// Distributed-balanced-tree configuration.
    pub dbt: DbtConfig,
    /// Transactional key-value store configuration.
    pub kv: KvConfig,
    /// Network model.
    pub net: NetConfig,
    /// Same-server request batching; `None` disables it.
    pub rpc_batch: Option<RpcBatchConfig>,
    /// Observability: latency-histogram timing gate, trace sampling and the
    /// slow-op threshold.
    pub obs: ObsConfig,
}

impl YesquelConfig {
    /// A deployment with `num_servers` storage servers and default settings
    /// for everything else.
    pub fn with_servers(num_servers: usize) -> Self {
        YesquelConfig {
            num_servers,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = YesquelConfig::default();
        assert_eq!(c.dbt.leaf_max_cells, 64);
        assert!(c.dbt.cache_inner_nodes);
        assert!(c.kv.gc_keep_versions >= 1);
        assert_eq!(c.net.one_way_latency_us, 0);
    }

    #[test]
    fn ablations_differ_from_default() {
        let d = DbtConfig::default();
        assert_ne!(DbtConfig::ablation_no_cache(), d);
        assert_ne!(DbtConfig::ablation_no_back_down(), d);
        assert_ne!(DbtConfig::ablation_no_load_splits(), d);
        assert_ne!(DbtConfig::ablation_no_replication(), d);
        assert_ne!(DbtConfig::ablation_sync_splits(), d);
        assert!(!DbtConfig::ablation_no_load_splits().replicate_hot_nodes);
        assert!(DbtConfig::ablation_no_replication().load_splits);
        assert!(!DbtConfig::ablation_no_cache().cache_inner_nodes);
        assert!(DbtConfig::ablation_no_back_down().cache_inner_nodes);
        assert!(!DbtConfig::ablation_no_back_down().back_down_search);
    }

    #[test]
    fn with_servers_sets_count() {
        assert_eq!(YesquelConfig::with_servers(8).num_servers, 8);
    }

    #[test]
    fn config_debug_names_fields() {
        // Configurations are embedded in benchmark reports through their
        // Debug rendering; make sure the field names survive.
        let c = YesquelConfig::with_servers(4);
        let s = format!("{c:?}");
        assert!(s.contains("num_servers"));
        assert!(s.contains("leaf_max_cells"));
    }
}
