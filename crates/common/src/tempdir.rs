//! A minimal self-cleaning temporary directory.
//!
//! The offline build has no `tempfile` crate, and the WAL tests need
//! isolated per-test log directories that disappear when the test ends —
//! including when it fails, which is why cleanup lives in `Drop` rather
//! than at the end of each test body.  Uniqueness comes from the process id,
//! a process-wide counter and the wall clock, so concurrently running test
//! binaries (cargo runs one process per integration test) never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::{Error, Result};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh empty directory whose name starts with `prefix`.
    pub fn new(prefix: &str) -> Result<Self> {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let name = format!("{prefix}-{}-{n}-{nanos:09}", std::process::id());
        let path = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&path).map_err(|e| Error::io(path.display(), e))?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory (debugging aid:
    /// keep a failing test's WAL around for inspection).
    pub fn into_path(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort: a missing directory or a permission race at process
        // teardown is not worth a panic in a destructor.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let t = TempDir::new("yesquel-tempdir-test").unwrap();
            kept = t.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(t.path().join("file"), b"x").unwrap();
            std::fs::create_dir(t.path().join("sub")).unwrap();
            std::fs::write(t.path().join("sub/nested"), b"y").unwrap();
        }
        assert!(!kept.exists(), "drop must remove the tree");
    }

    #[test]
    fn names_are_unique() {
        let a = TempDir::new("yesquel-uniq").unwrap();
        let b = TempDir::new("yesquel-uniq").unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn into_path_keeps_directory() {
        let t = TempDir::new("yesquel-keep").unwrap();
        let p = t.into_path();
        assert!(p.is_dir());
        std::fs::remove_dir_all(&p).unwrap();
    }
}
