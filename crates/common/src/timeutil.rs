//! Small time helpers shared by the benchmark harness and the network model.

use std::time::{Duration, Instant};

/// A stopwatch measuring elapsed wall-clock microseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restarts the stopwatch and returns the elapsed microseconds since the
    /// previous start.
    pub fn lap_us(&mut self) -> u64 {
        let e = self.elapsed_us();
        self.start = Instant::now();
        e
    }
}

/// Converts an operation count and an elapsed duration into operations per
/// second, guarding against a zero-duration denominator.
pub fn ops_per_sec(ops: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return ops as f64;
    }
    ops as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotone() {
        let mut sw = Stopwatch::start();
        let a = sw.elapsed_us();
        let b = sw.elapsed_us();
        assert!(b >= a);
        let lap = sw.lap_us();
        assert!(lap >= b);
    }

    #[test]
    fn ops_per_sec_basic() {
        let r = ops_per_sec(1000, Duration::from_secs(2));
        assert!((r - 500.0).abs() < 1e-9);
        // Zero duration does not divide by zero.
        assert_eq!(ops_per_sec(7, Duration::from_secs(0)), 7.0);
    }
}
