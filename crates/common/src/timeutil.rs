//! Small time helpers shared by the benchmark harness and the network model.

use std::time::{Duration, Instant};

/// A stopwatch measuring elapsed wall-clock microseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Restarts the stopwatch and returns the elapsed microseconds since the
    /// previous start.
    pub fn lap_us(&mut self) -> u64 {
        let e = self.elapsed_us();
        self.start = Instant::now();
        e
    }
}

/// Backoff for retry attempt `attempt` (0-based): exponential in the attempt
/// number from `base_us`, capped at `cap_us`, with deterministic jitter drawn
/// from `salt` so that concurrent clients (different salts) spread out while
/// a fixed-seed test remains reproducible.  The jitter picks uniformly from
/// the upper half of the exponential window ("decorrelated jitter" shape).
/// Returns 0 when `base_us` is 0, letting callers yield instead of sleep.
pub fn retry_backoff_us(attempt: usize, base_us: u64, cap_us: u64, salt: u64) -> u64 {
    if base_us == 0 {
        return 0;
    }
    let exp = base_us
        .saturating_mul(1u64 << attempt.min(16))
        .min(cap_us.max(base_us));
    let half = exp / 2;
    let jitter = crate::ids::splitmix64(salt.wrapping_add(attempt as u64)) % (half + 1);
    half + jitter
}

/// Sleeps for [`retry_backoff_us`] microseconds (yields when the backoff is
/// zero), the shared retry-pacing primitive of the client layers.
pub fn sleep_backoff(attempt: usize, base_us: u64, cap_us: u64, salt: u64) {
    let us = retry_backoff_us(attempt, base_us, cap_us, salt);
    if us == 0 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// Converts an operation count and an elapsed duration into operations per
/// second, guarding against a zero-duration denominator.
pub fn ops_per_sec(ops: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return ops as f64;
    }
    ops as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotone() {
        let mut sw = Stopwatch::start();
        let a = sw.elapsed_us();
        let b = sw.elapsed_us();
        assert!(b >= a);
        let lap = sw.lap_us();
        assert!(lap >= b);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        // Exponential growth up to the cap.
        let a0 = retry_backoff_us(0, 100, 10_000, 7);
        let a4 = retry_backoff_us(4, 100, 10_000, 7);
        assert!((50..=100).contains(&a0), "a0={a0}");
        assert!((800..=1600).contains(&a4), "a4={a4}");
        // Capped: attempt 12 would be 100 << 12 = 409600 without the cap.
        let big = retry_backoff_us(12, 100, 10_000, 7);
        assert!(big <= 10_000, "big={big}");
        // Deterministic per (attempt, salt); different salts differ.
        assert_eq!(
            retry_backoff_us(3, 100, 10_000, 9),
            retry_backoff_us(3, 100, 10_000, 9)
        );
        assert_ne!(
            retry_backoff_us(3, 100, 10_000, 9),
            retry_backoff_us(3, 100, 10_000, 10)
        );
        // Zero base means "yield, don't sleep".
        assert_eq!(retry_backoff_us(5, 0, 10_000, 1), 0);
    }

    #[test]
    fn ops_per_sec_basic() {
        let r = ops_per_sec(1000, Duration::from_secs(2));
        assert!((r - 500.0).abs() < 1e-9);
        // Zero duration does not divide by zero.
        assert_eq!(ops_per_sec(7, Duration::from_secs(0)), 7.0);
    }
}
