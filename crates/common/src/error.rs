//! Error type shared by every layer of the system.
//!
//! The error enum is deliberately flat: storage, tree and SQL layers all
//! return the same [`Error`] so that an error raised deep inside a storage
//! server can be propagated unchanged through the distributed balanced tree
//! and the query processor back to the application.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the Yesquel layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A key or object was not found where it was required to exist.
    NotFound(String),
    /// A transaction could not commit because of a write-write conflict
    /// under snapshot isolation.  The transaction has been aborted and the
    /// caller may retry it.
    Conflict(String),
    /// The transaction was explicitly aborted (by the user or by the system)
    /// and can no longer be used.
    Aborted(String),
    /// A prepare-phase lock could not be acquired within the configured
    /// bound; the transaction aborts rather than deadlock.
    LockTimeout(String),
    /// The requested server does not exist or is unreachable.
    ServerUnavailable(String),
    /// An RPC deadline elapsed before a response arrived (request or
    /// response lost on the wire, or the server stalled).  The operation may
    /// or may not have been applied server-side; retries are made safe by
    /// server-side deduplication on the transaction id.
    Timeout(String),
    /// A server is temporarily unreachable (crashed, restarting, or a
    /// transient transport failure) and the operation was definitely not
    /// applied.  Retrying the whole transaction after a backoff is the
    /// documented recovery strategy; the SQL layer surfaces this variant
    /// only once its own retries are exhausted.
    Unavailable(String),
    /// The fate of a commit could not be determined: the commit decision was
    /// in flight when the coordinator lost contact with the commit point, so
    /// the transaction may or may not have committed.  Never blindly retried
    /// (a retry could double-apply); the application must reconcile.
    Indeterminate(String),
    /// A bounded retry loop gave up.  Carries the attempt count and the last
    /// underlying error so callers can distinguish "retried conflicts until
    /// the limit" from "the cluster is down".
    RetriesExhausted {
        /// Number of attempts made before giving up.
        attempts: usize,
        /// The error observed on the final attempt.
        last: Box<Error>,
    },
    /// Stored bytes could not be decoded (corrupt node, record or message).
    Corruption(String),
    /// A disk operation failed (open, write, fsync, rename).  Carries the
    /// failing path or operation for context.  Never retried blindly: a
    /// server whose log is failing must stop acknowledging writes.
    Io(String),
    /// The write-ahead log contains a record that fails its checksum or
    /// cannot be decoded *before* the recoverable tail.  A torn or corrupt
    /// tail record is not an error — recovery truncates it — so this variant
    /// only surfaces for damage that makes the clean prefix ambiguous (e.g.
    /// an unreadable checkpoint with no older segment to fall back to).
    WalCorrupt(String),
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// The SQL statement refers to a table, column or index that does not
    /// exist, or redefines one that already exists.
    Schema(String),
    /// A constraint (primary-key uniqueness, NOT NULL, unique index) was
    /// violated by a DML statement.
    Constraint(String),
    /// A SQL type error (e.g. adding a string to an integer without a
    /// defined coercion).
    Type(String),
    /// A statement parameter could not be bound: arity mismatch, an unknown
    /// `:name`, mixing named and positional placeholders, or a typed row
    /// access that does not fit the value.  Surfaced at bind time, before
    /// any row is touched.
    Bind(String),
    /// The feature is recognised but not supported by this implementation.
    Unsupported(String),
    /// Invalid argument or state transition requested by the caller.
    InvalidArgument(String),
    /// An invariant inside the system was violated; indicates a bug.
    Internal(String),
}

impl Error {
    /// Returns true if the error indicates a transient condition under which
    /// retrying the whole transaction is the documented recovery strategy.
    ///
    /// `Timeout` and `Unavailable` qualify because every path that surfaces
    /// them has either not applied the operation or made it idempotent via
    /// server-side deduplication; `Indeterminate` deliberately does not (the
    /// commit may have been applied, so re-running could double-apply).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Conflict(_) | Error::LockTimeout(_) | Error::Timeout(_) | Error::Unavailable(_)
        )
    }

    /// True for the availability-class errors (`Timeout`, `Unavailable`):
    /// the cluster misbehaved, not the transaction.  Retry loops use this to
    /// pick a longer backoff and to report exhaustion as [`Error::Unavailable`]
    /// rather than a conflict.
    pub fn is_availability(&self) -> bool {
        matches!(self, Error::Timeout(_) | Error::Unavailable(_))
    }

    /// Short machine-readable tag for the error category, used by the
    /// benchmark harness when tabulating abort reasons.
    pub fn tag(&self) -> &'static str {
        match self {
            Error::NotFound(_) => "not_found",
            Error::Conflict(_) => "conflict",
            Error::Aborted(_) => "aborted",
            Error::LockTimeout(_) => "lock_timeout",
            Error::ServerUnavailable(_) => "server_unavailable",
            Error::Timeout(_) => "timeout",
            Error::Unavailable(_) => "unavailable",
            Error::Indeterminate(_) => "indeterminate",
            Error::RetriesExhausted { .. } => "retries_exhausted",
            Error::Corruption(_) => "corruption",
            Error::Io(_) => "io",
            Error::WalCorrupt(_) => "wal_corrupt",
            Error::Parse(_) => "parse",
            Error::Schema(_) => "schema",
            Error::Constraint(_) => "constraint",
            Error::Type(_) => "type",
            Error::Bind(_) => "bind",
            Error::Unsupported(_) => "unsupported",
            Error::InvalidArgument(_) => "invalid_argument",
            Error::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Conflict(m) => write!(f, "transaction conflict: {m}"),
            Error::Aborted(m) => write!(f, "transaction aborted: {m}"),
            Error::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            Error::ServerUnavailable(m) => write!(f, "server unavailable: {m}"),
            Error::Timeout(m) => write!(f, "rpc timeout: {m}"),
            Error::Unavailable(m) => write!(f, "unavailable: {m}"),
            Error::Indeterminate(m) => write!(f, "commit outcome indeterminate: {m}"),
            Error::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            Error::Corruption(m) => write!(f, "data corruption: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::WalCorrupt(m) => write!(f, "write-ahead log corrupt: {m}"),
            Error::Parse(m) => write!(f, "SQL parse error: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Constraint(m) => write!(f, "constraint violation: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl Error {
    /// Wraps a [`std::io::Error`] with context (typically the path or the
    /// operation that failed), so disk failures surface as typed errors
    /// instead of panics or stringly `Internal`s.
    pub fn io(context: impl std::fmt::Display, err: std::io::Error) -> Self {
        Error::Io(format!("{context}: {err}"))
    }
}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(Error::Conflict("x".into()).is_retryable());
        assert!(Error::LockTimeout("x".into()).is_retryable());
        assert!(Error::Timeout("x".into()).is_retryable());
        assert!(Error::Unavailable("x".into()).is_retryable());
        assert!(!Error::Indeterminate("x".into()).is_retryable());
        assert!(!Error::NotFound("x".into()).is_retryable());
        assert!(!Error::Parse("x".into()).is_retryable());
        let exhausted = Error::RetriesExhausted {
            attempts: 3,
            last: Box::new(Error::Conflict("x".into())),
        };
        assert!(!exhausted.is_retryable());
    }

    #[test]
    fn availability_classification() {
        assert!(Error::Timeout("x".into()).is_availability());
        assert!(Error::Unavailable("x".into()).is_availability());
        assert!(!Error::Conflict("x".into()).is_availability());
        assert!(!Error::Indeterminate("x".into()).is_availability());
    }

    #[test]
    fn retries_exhausted_reports_cause() {
        let e = Error::RetriesExhausted {
            attempts: 7,
            last: Box::new(Error::Timeout("server 2 silent".into())),
        };
        let s = e.to_string();
        assert!(s.contains("7 attempts"));
        assert!(s.contains("server 2 silent"));
        assert_eq!(e.tag(), "retries_exhausted");
    }

    #[test]
    fn display_includes_message() {
        let e = Error::Schema("no such table t".into());
        assert!(e.to_string().contains("no such table t"));
        assert_eq!(e.tag(), "schema");
    }

    #[test]
    fn io_errors_are_typed_and_not_retryable() {
        let e = Error::io(
            "/var/wal/segment-0.wal",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert_eq!(e.tag(), "io");
        assert!(e.to_string().contains("/var/wal/segment-0.wal"));
        assert!(e.to_string().contains("denied"));
        assert!(!e.is_retryable());
        assert!(!e.is_availability());

        let from: Error = std::io::Error::other("disk on fire").into();
        assert_eq!(from.tag(), "io");

        let wc = Error::WalCorrupt("checkpoint checksum mismatch".into());
        assert_eq!(wc.tag(), "wal_corrupt");
        assert!(!wc.is_retryable());
    }

    #[test]
    fn tags_are_distinct() {
        let errs = [
            Error::NotFound(String::new()),
            Error::Conflict(String::new()),
            Error::Aborted(String::new()),
            Error::LockTimeout(String::new()),
            Error::ServerUnavailable(String::new()),
            Error::Timeout(String::new()),
            Error::Unavailable(String::new()),
            Error::Indeterminate(String::new()),
            Error::RetriesExhausted {
                attempts: 0,
                last: Box::new(Error::Internal(String::new())),
            },
            Error::Corruption(String::new()),
            Error::Io(String::new()),
            Error::WalCorrupt(String::new()),
            Error::Parse(String::new()),
            Error::Schema(String::new()),
            Error::Constraint(String::new()),
            Error::Type(String::new()),
            Error::Bind(String::new()),
            Error::Unsupported(String::new()),
            Error::InvalidArgument(String::new()),
            Error::Internal(String::new()),
        ];
        let mut tags: Vec<_> = errs.iter().map(|e| e.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), errs.len());
    }
}
