//! Identifiers used across the storage layers.
//!
//! The Yesquel storage engine stores every distributed-balanced-tree node as
//! a key-value pair in the transactional key-value store.  The key of such a
//! pair is an [`ObjectId`]: the identifier of the tree the node belongs to
//! (every SQL table and every secondary index is its own tree) plus the
//! identifier of the node within that tree.  The key-value store places
//! objects on storage servers based on the object id, so that the nodes of
//! one tree spread over all servers.

use std::fmt;

/// Index of a storage server within the cluster (0-based, dense).
pub type ServerId = usize;

/// Identifier of a distributed balanced tree.
///
/// Tree 0 is reserved for the SQL catalog; every user table and secondary
/// index allocates a fresh tree id from the catalog.
pub type TreeId = u64;

/// Identifier of an object (a DBT node, or an auxiliary object such as a
/// row-id allocator) within a tree.
pub type Oid = u64;

/// Logical timestamps handed out by the timestamp oracle.  Both transaction
/// snapshot timestamps and commit timestamps are of this type.
pub type Timestamp = u64;

/// Identifier of a transaction, unique within a run of the system.
pub type TxnId = u64;

/// The root node of every tree has this object id.
pub const ROOT_OID: Oid = 0;

/// Object id reserved, within each tree, for small per-tree metadata (for
/// the SQL layer: the row-id allocator).
pub const META_OID: Oid = 1;

/// First object id handed out for ordinary tree nodes.
pub const FIRST_NODE_OID: Oid = 16;

/// Fully-qualified identifier of a stored object: `(tree, oid)`.
///
/// The distribution of objects over servers is derived from this id (see
/// [`ObjectId::home_server`]), following the paper's design in which the
/// nodes of one DBT are spread over the storage servers so that the tree's
/// capacity grows with the number of servers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    /// The tree (table or index) this object belongs to.
    pub tree: TreeId,
    /// The object within the tree.
    pub oid: Oid,
}

impl ObjectId {
    /// Creates an object id.
    pub fn new(tree: TreeId, oid: Oid) -> Self {
        ObjectId { tree, oid }
    }

    /// The root node of tree `tree`.
    pub fn root(tree: TreeId) -> Self {
        ObjectId {
            tree,
            oid: ROOT_OID,
        }
    }

    /// The per-tree metadata object of tree `tree`.
    pub fn meta(tree: TreeId) -> Self {
        ObjectId {
            tree,
            oid: META_OID,
        }
    }

    /// Returns true if this object is the root node of its tree.
    pub fn is_root(&self) -> bool {
        self.oid == ROOT_OID
    }

    /// Deterministically maps this object to its home storage server among
    /// `nservers` servers.
    ///
    /// The root of a tree is placed by hashing only the tree id, and every
    /// other node is placed by hashing the full `(tree, oid)` pair, so that
    /// the interior and leaf nodes of a single tree spread across all
    /// servers.  This mirrors the paper's placement goal: adding servers adds
    /// capacity to every tree.
    pub fn home_server(&self, nservers: usize) -> ServerId {
        assert!(nservers > 0, "cluster must have at least one server");
        let h = if self.is_root() {
            splitmix64(self.tree.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        } else {
            splitmix64(self.tree ^ splitmix64(self.oid.wrapping_add(0xabcd_ef01)))
        };
        (h % nservers as u64) as ServerId
    }

    /// Serializes the object id into 16 big-endian bytes (used as the
    /// storage key inside a server's local store and in RPC messages).
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.tree.to_be_bytes());
        b[8..].copy_from_slice(&self.oid.to_be_bytes());
        b
    }

    /// Inverse of [`ObjectId::to_bytes`].
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() != 16 {
            return None;
        }
        let tree = u64::from_be_bytes(b[..8].try_into().ok()?);
        let oid = u64::from_be_bytes(b[8..].try_into().ok()?);
        Some(ObjectId { tree, oid })
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj({}:{})", self.tree, self.oid)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.tree, self.oid)
    }
}

/// SplitMix64 hash step; cheap, well-mixed, and dependency-free.
///
/// Used for object placement and for scrambling keys in workload generators.
/// Mixes two words (plus a caller-chosen salt) into a shard index in
/// `0..shards`, where `shards` is a power of two.  Used by every
/// lock-striped structure keyed by `(tree, oid)`-shaped pairs — the server
/// store and the client node cache — so a future change to the mixing
/// function reaches all of them.
pub fn shard_index(a: u64, b: u64, salt: u64, shards: usize) -> usize {
    debug_assert!(shards.is_power_of_two());
    (splitmix64(a ^ splitmix64(b ^ salt)) as usize) & (shards - 1)
}

pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn object_id_roundtrip() {
        let id = ObjectId::new(42, 77);
        let b = id.to_bytes();
        assert_eq!(ObjectId::from_bytes(&b), Some(id));
        assert_eq!(ObjectId::from_bytes(&b[..15]), None);
    }

    #[test]
    fn root_and_meta_helpers() {
        assert!(ObjectId::root(3).is_root());
        assert!(!ObjectId::meta(3).is_root());
        assert_eq!(ObjectId::root(3).oid, ROOT_OID);
        assert_eq!(ObjectId::meta(3).oid, META_OID);
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for tree in 0..20u64 {
            for oid in 0..200u64 {
                let id = ObjectId::new(tree, oid);
                for n in 1..10usize {
                    let s = id.home_server(n);
                    assert!(s < n);
                    assert_eq!(s, id.home_server(n));
                }
            }
        }
    }

    #[test]
    fn placement_spreads_nodes_of_one_tree() {
        // The nodes of a single tree must not all land on one server,
        // otherwise adding servers would not add capacity to the tree.
        let n = 8;
        let mut counts: HashMap<ServerId, usize> = HashMap::new();
        for oid in 0..8000u64 {
            let id = ObjectId::new(7, oid);
            *counts.entry(id.home_server(n)).or_default() += 1;
        }
        assert_eq!(counts.len(), n);
        for (_, c) in counts {
            // Roughly balanced: each server within 3x of the fair share.
            assert!(c > 8000 / n / 3, "server underloaded: {c}");
            assert!(c < 8000 / n * 3, "server overloaded: {c}");
        }
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(0), 0);
    }
}
