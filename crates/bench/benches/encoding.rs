//! Benchmarks of node and key encodings: the per-fetch decode cost is paid
//! on every RPC of every tree operation, so this is the innermost hot loop
//! of the whole system.  The headline number is `node/point_probe_leaf64`:
//! one point probe through a [`LeafView`] — parse the page header plus an
//! O(log n) binary search over the cell-offset directory, decoding only the
//! keys it compares and allocating nothing.  The `decode_*` benches measure
//! full materialisation for comparison (the write path still pays it).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yesquel_common::encoding::{order_decode_i64, order_encode_i64};
use yesquel_ydbt::{Bound, InnerNode, InnerView, LeafNode, LeafView, Node};

fn sample_leaf(cells: usize, value_len: usize) -> Node {
    let value = vec![0xabu8; value_len];
    let mut leaf = LeafNode::empty_root();
    for i in 0..cells {
        let key = order_encode_i64(i as i64);
        leaf.insert_cell(&key, Bytes::from(value.clone()));
    }
    Node::Leaf(leaf)
}

fn sample_inner(children: usize) -> Node {
    let keys = (1..children)
        .map(|i| Bytes::copy_from_slice(&order_encode_i64(i as i64)))
        .collect();
    Node::Inner(InnerNode {
        lower: Bound::key(&order_encode_i64(0)),
        upper: Bound::PosInf,
        keys,
        children: (0..children as u64).map(|i| 100 + i).collect(),
        height: 1,
        replicas: vec![],
    })
}

fn bench_node_codec(c: &mut Criterion) {
    let leaf = sample_leaf(64, 100);
    let leaf_buf = Bytes::from(leaf.encode());
    let inner = sample_inner(64);
    let inner_buf = Bytes::from(inner.encode());

    c.bench_function("node/encode_leaf64x100B", |b| {
        b.iter(|| black_box(leaf.encode()))
    });
    c.bench_function("node/decode_leaf64x100B_copy", |b| {
        b.iter(|| black_box(Node::decode(&leaf_buf).unwrap()))
    });
    c.bench_function("node/decode_leaf64x100B_shared", |b| {
        b.iter(|| black_box(Node::decode_shared(&leaf_buf).unwrap()))
    });
    c.bench_function("node/encode_inner64", |b| {
        b.iter(|| black_box(inner.encode()))
    });
    c.bench_function("node/decode_inner64_shared", |b| {
        b.iter(|| black_box(Node::decode_shared(&inner_buf).unwrap()))
    });
}

fn bench_node_views(c: &mut Criterion) {
    let leaf_buf = Bytes::from(sample_leaf(64, 100).encode());
    let inner_buf = Bytes::from(sample_inner(64).encode());

    // The paper's point-read inner loop: validate the page and binary-search
    // one key, touching O(log 64) cells instead of decoding all 64.
    c.bench_function("node/point_probe_leaf64", |b| {
        let view = LeafView::parse(leaf_buf.clone()).unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 37) % 64;
            let key = order_encode_i64(i);
            black_box(view.find(&key).unwrap())
        });
    });
    // Parse alone (what a leaf fetch now pays instead of a full decode).
    c.bench_function("node/view_parse_leaf64x100B", |b| {
        b.iter(|| black_box(LeafView::parse(leaf_buf.clone()).unwrap()))
    });
    // Inner-node routing through the separator directory (the per-level
    // cost of a cached descent).
    c.bench_function("node/child_for_inner64", |b| {
        let view = InnerView::parse(inner_buf.clone()).unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 29) % 64;
            let key = order_encode_i64(i);
            black_box(view.child_for(&key).unwrap())
        });
    });
}

fn bench_key_codec(c: &mut Criterion) {
    c.bench_function("encoding/order_encode_i64", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37);
            black_box(order_encode_i64(i))
        });
    });
    let k = order_encode_i64(123_456_789);
    c.bench_function("encoding/order_decode_i64", |b| {
        b.iter(|| black_box(order_decode_i64(&k).unwrap()))
    });
}

criterion_group!(
    encoding_benches,
    bench_node_codec,
    bench_node_views,
    bench_key_codec
);
criterion_main!(encoding_benches);
