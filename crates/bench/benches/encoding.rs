//! Benchmarks of node and key encodings: the per-fetch decode cost is paid
//! on every RPC of every tree operation, so this is the innermost hot loop
//! of the whole system.  `decode_shared` (zero-copy slices of the fetched
//! buffer) is compared against `decode` (copying) to keep the win measured.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yesquel_common::encoding::{order_decode_i64, order_encode_i64};
use yesquel_ydbt::{Bound, InnerNode, LeafNode, Node};

fn sample_leaf(cells: usize, value_len: usize) -> Node {
    let value = vec![0xabu8; value_len];
    let mut leaf = LeafNode::empty_root();
    for i in 0..cells {
        let key = order_encode_i64(i as i64);
        leaf.insert_cell(&key, Bytes::from(value.clone()));
    }
    Node::Leaf(leaf)
}

fn sample_inner(children: usize) -> Node {
    let keys = (1..children)
        .map(|i| Bytes::copy_from_slice(&order_encode_i64(i as i64)))
        .collect();
    Node::Inner(InnerNode {
        lower: Bound::key(&order_encode_i64(0)),
        upper: Bound::PosInf,
        keys,
        children: (0..children as u64).map(|i| 100 + i).collect(),
        height: 1,
    })
}

fn bench_node_codec(c: &mut Criterion) {
    let leaf = sample_leaf(64, 100);
    let leaf_buf = Bytes::from(leaf.encode());
    let inner = sample_inner(64);
    let inner_buf = Bytes::from(inner.encode());

    c.bench_function("node/encode_leaf64x100B", |b| {
        b.iter(|| black_box(leaf.encode()))
    });
    c.bench_function("node/decode_leaf64x100B_copy", |b| {
        b.iter(|| black_box(Node::decode(&leaf_buf).unwrap()))
    });
    c.bench_function("node/decode_leaf64x100B_shared", |b| {
        b.iter(|| black_box(Node::decode_shared(&leaf_buf).unwrap()))
    });
    c.bench_function("node/encode_inner64", |b| {
        b.iter(|| black_box(inner.encode()))
    });
    c.bench_function("node/decode_inner64_shared", |b| {
        b.iter(|| black_box(Node::decode_shared(&inner_buf).unwrap()))
    });
}

fn bench_key_codec(c: &mut Criterion) {
    c.bench_function("encoding/order_encode_i64", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37);
            black_box(order_encode_i64(i))
        });
    });
    let k = order_encode_i64(123_456_789);
    c.bench_function("encoding/order_decode_i64", |b| {
        b.iter(|| black_box(order_decode_i64(&k).unwrap()))
    });
}

criterion_group!(encoding_benches, bench_node_codec, bench_key_codec);
criterion_main!(encoding_benches);
