//! Benchmarks of the transactional key-value hot paths: snapshot gets,
//! one-phase and two-phase commit, and the no-communication read-only
//! commit.  Run with `cargo bench -p yesquel-bench --bench kv_ops`; set
//! `BENCH_JSON_OUT=<file>` to also record JSON lines (see BENCH_1.json).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yesquel_bench::{durable_kv_deployment, kv_deployment};
use yesquel_common::{ObjectId, WalFsyncPolicy};

const SERVERS: usize = 4;
/// Tree id used for bench objects.
const TREE: u64 = 1;

/// Picks one object id homed at each server, so multi-object transactions
/// provably cross server boundaries (forcing two-phase commit).
fn one_oid_per_server(nservers: usize) -> Vec<ObjectId> {
    let mut picks: Vec<Option<ObjectId>> = vec![None; nservers];
    let mut oid = 0u64;
    while picks.iter().any(Option::is_none) {
        let obj = ObjectId::new(TREE, oid);
        let s = obj.home_server(nservers);
        if picks[s].is_none() {
            picks[s] = Some(obj);
        }
        oid += 1;
    }
    picks.into_iter().map(|p| p.expect("filled")).collect()
}

fn bench_get(c: &mut Criterion) {
    let db = kv_deployment(SERVERS);
    let client = db.client();
    // Preload a working set.
    let n = 1024u64;
    let txn = client.begin();
    for oid in 0..n {
        txn.put(ObjectId::new(TREE, oid), format!("value-{oid}"))
            .unwrap();
    }
    txn.commit().unwrap();

    c.bench_function("kv/get_point", |b| {
        let txn = client.begin();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % n;
            black_box(txn.get(ObjectId::new(TREE, i)).unwrap())
        });
    });

    c.bench_function("kv/get_hot_object", |b| {
        let txn = client.begin();
        let obj = ObjectId::new(TREE, 7);
        b.iter(|| black_box(txn.get(obj).unwrap()));
    });
}

fn bench_commit(c: &mut Criterion) {
    let db = kv_deployment(SERVERS);
    let client = db.client();

    c.bench_function("kv/commit_1pc", |b| {
        let mut i = 0u64;
        b.iter(|| {
            // One object -> one participant -> one-phase commit.
            i += 1;
            let txn = client.begin();
            txn.put(ObjectId::new(TREE, 1_000_000 + (i % 512)), b"x".to_vec())
                .unwrap();
            txn.commit().unwrap()
        });
    });
    assert!(
        db.stats().counter("kv.commit_1pc").get() > 0,
        "1PC path not exercised"
    );

    let spread = one_oid_per_server(SERVERS);
    c.bench_function("kv/commit_2pc", |b| {
        b.iter(|| {
            // One write per server -> every server participates -> 2PC.
            let txn = client.begin();
            for obj in &spread {
                txn.put(*obj, b"y".to_vec()).unwrap();
            }
            txn.commit().unwrap()
        });
    });
    assert!(
        db.stats().counter("kv.commit_2pc").get() > 0,
        "2PC path not exercised"
    );

    c.bench_function("kv/commit_readonly", |b| {
        let obj = ObjectId::new(TREE, 42);
        b.iter(|| {
            let txn = client.begin();
            let v = txn.get(obj).unwrap();
            txn.commit().unwrap();
            black_box(v)
        });
    });
}

fn bench_commit_wal(c: &mut Criterion) {
    // Same workload as kv/commit_1pc, but every server appends to a
    // write-ahead log before acknowledging.  Two fsync policies: group
    // commit (the default; a single appender pays the full window of
    // latency — the win is fsync batching under concurrency) and an fsync
    // per record.  Compare against kv/commit_1pc for the durability tax.
    let cases = [
        (
            "kv/commit_1pc_wal_group",
            WalFsyncPolicy::Group { window_us: 100 },
        ),
        ("kv/commit_1pc_wal_always", WalFsyncPolicy::Always),
    ];
    for (name, policy) in cases {
        let (db, _wal_dir) = durable_kv_deployment(SERVERS, policy);
        let client = db.client();
        c.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let txn = client.begin();
                txn.put(ObjectId::new(TREE, 1_000_000 + (i % 512)), b"x".to_vec())
                    .unwrap();
                txn.commit().unwrap()
            });
        });
        assert!(
            db.stats().counter("wal.appends").get() > 0,
            "WAL path not exercised"
        );
        assert!(
            db.stats().counter("wal.fsyncs").get() > 0,
            "fsync policy not exercised"
        );
    }
}

fn bench_baseline(c: &mut Criterion) {
    // Single-node, non-transactional reference point.
    let kv = yesquel_baselines::LocalKv::new();
    for i in 0..1024u64 {
        kv.put(&i.to_be_bytes(), format!("value-{i}"));
    }
    c.bench_function("baseline/local_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(kv.get(&i.to_be_bytes()))
        });
    });
}

criterion_group!(
    kv_benches,
    bench_get,
    bench_commit,
    bench_commit_wal,
    bench_baseline
);
criterion_main!(kv_benches);
