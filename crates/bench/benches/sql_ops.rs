//! Benchmarks of the SQL front end (tokenizer and parser).  The SQL layer
//! is not yet on the storage hot path, but parse cost bounds the per-query
//! overhead every statement pays before touching a tree.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yesquel_sql::{parse, tokenize};

const POINT_SELECT: &str = "SELECT id, name, score FROM users WHERE id = 12345";
const JOIN_SELECT: &str = "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id \
                           WHERE o.total > 100 ORDER BY o.total DESC LIMIT 10";
const INSERT: &str = "INSERT INTO users (id, name, score) VALUES (1, 'alice', 3.5)";

fn bench_sql(c: &mut Criterion) {
    c.bench_function("sql/tokenize_point_select", |b| {
        b.iter(|| black_box(tokenize(POINT_SELECT).unwrap()))
    });
    c.bench_function("sql/parse_point_select", |b| {
        b.iter(|| black_box(parse(POINT_SELECT).unwrap()))
    });
    c.bench_function("sql/parse_join_select", |b| {
        b.iter(|| black_box(parse(JOIN_SELECT).unwrap()))
    });
    c.bench_function("sql/parse_insert", |b| {
        b.iter(|| black_box(parse(INSERT).unwrap()))
    });
}

criterion_group!(sql_benches, bench_sql);
criterion_main!(sql_benches);
