//! Benchmarks of the SQL layer: the front end (tokenizer/parser) and the
//! end-to-end execution path — statement text in, planner, executor, DBT
//! operations, transaction commit.  `sql/point_select_pk` against
//! `dbt/point_read_warm_with_txn` is the paper's "cost of SQL" question:
//! what the query processor adds on top of a raw tree point read.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yesquel_common::config::SplitMode;
use yesquel_common::YesquelConfig;
use yesquel_sql::{params, parse, tokenize, Value};
use yesquel_ydbt::DbtEngine;

const POINT_SELECT: &str = "SELECT id, name, score FROM users WHERE id = 12345";
const JOIN_SELECT: &str = "SELECT u.name, o.total FROM users u JOIN orders o ON u.id = o.user_id \
                           WHERE o.total > 100 ORDER BY o.total DESC LIMIT 10";
const INSERT: &str = "INSERT INTO users (id, name, score) VALUES (1, 'alice', 3.5)";

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("sql/tokenize_point_select", |b| {
        b.iter(|| black_box(tokenize(POINT_SELECT).unwrap()))
    });
    c.bench_function("sql/parse_point_select", |b| {
        b.iter(|| black_box(parse(POINT_SELECT).unwrap()))
    });
    c.bench_function("sql/parse_join_select", |b| {
        b.iter(|| black_box(parse(JOIN_SELECT).unwrap()))
    });
    c.bench_function("sql/parse_insert", |b| {
        b.iter(|| black_box(parse(INSERT).unwrap()))
    });
}

const ROWS: i64 = 4096;

/// An in-process deployment with one populated, indexed table and a warm
/// node cache, behind a SQL session.
fn sql_fixture() -> (yesquel_kv::KvDatabase, yesquel_sql::Catalog) {
    let mut config = YesquelConfig::with_servers(4);
    // Synchronous splits keep the loaded tree deterministic.
    config.dbt.split_mode = SplitMode::Synchronous;
    config.dbt.load_splits = false;
    let dbt_cfg = config.dbt.clone();
    let db = yesquel_kv::KvDatabase::new(config);
    let engine = DbtEngine::new(db.client(), dbt_cfg);
    let catalog = yesquel_sql::Catalog::open(engine).unwrap();
    let client = db.client();

    let ddl = parse(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, score INT NOT NULL)",
    )
    .unwrap();
    let ddl2 = parse("CREATE INDEX users_by_score ON users (score)").unwrap();
    client
        .run_txn(|txn| {
            yesquel_sql::execute(&catalog, txn, &ddl, &[])?;
            yesquel_sql::execute(&catalog, txn, &ddl2, &[])
        })
        .unwrap();
    let ins = parse("INSERT INTO users (name, score) VALUES (?, ?)").unwrap();
    for i in 0..ROWS {
        client
            .run_txn(|txn| {
                yesquel_sql::execute(
                    &catalog,
                    txn,
                    &ins,
                    &[Value::Text(format!("user-{i}")), Value::Int(i % 512)],
                )
            })
            .unwrap();
    }
    // Warm the client cache over both trees.
    let probe = parse("SELECT name FROM users WHERE id = ?").unwrap();
    let warm = parse("SELECT id FROM users WHERE score = ?").unwrap();
    let txn = client.begin();
    for i in 0..ROWS {
        yesquel_sql::execute(&catalog, &txn, &probe, &[Value::Int(i + 1)]).unwrap();
    }
    for s in 0..512 {
        yesquel_sql::execute(&catalog, &txn, &warm, &[Value::Int(s)]).unwrap();
    }
    txn.commit().unwrap();
    (db, catalog)
}

fn bench_execution(c: &mut Criterion) {
    let (db, catalog) = sql_fixture();
    let client = db.client();

    c.bench_function("sql/point_select_pk", |b| {
        // Full auto-commit statement: parse + plan + one warm DBT point
        // read + read-only commit.
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % ROWS;
            let stmt = parse("SELECT name, score FROM users WHERE id = ?").unwrap();
            let txn = client.begin();
            let rs = yesquel_sql::execute(&catalog, &txn, &stmt, &[Value::Int(i + 1)]).unwrap();
            txn.commit().unwrap();
            assert_eq!(rs.rows.len(), 1);
            black_box(rs)
        });
    });

    c.bench_function("sql/index_range_scan", |b| {
        // Secondary-index range scan (8 score values ~= 64 rows) with rowid
        // fetch-back per entry, ORDER BY + LIMIT on top.
        let stmt =
            parse("SELECT name FROM users WHERE score >= ? AND score < ? ORDER BY score LIMIT 50")
                .unwrap();
        let mut s = 0i64;
        b.iter(|| {
            s = (s + 7) % 504;
            let txn = client.begin();
            let rs =
                yesquel_sql::execute(&catalog, &txn, &stmt, &[Value::Int(s), Value::Int(s + 8)])
                    .unwrap();
            txn.commit().unwrap();
            black_box(rs)
        });
    });

    c.bench_function("sql/covering_index_scan", |b| {
        // Same 8-score window (~64 rows) as sql/index_range_scan, but the
        // projection lives in the index: rows decode straight out of the
        // entries with zero rowid fetch-backs, and the ORDER BY comes from
        // the scan itself.
        let stmt =
            parse("SELECT score FROM users WHERE score >= ? AND score < ? ORDER BY score LIMIT 50")
                .unwrap();
        let mut s = 0i64;
        b.iter(|| {
            s = (s + 7) % 504;
            let txn = client.begin();
            let rs =
                yesquel_sql::execute(&catalog, &txn, &stmt, &[Value::Int(s), Value::Int(s + 8)])
                    .unwrap();
            txn.commit().unwrap();
            black_box(rs)
        });
    });

    c.bench_function("sql/order_by_limit_indexed", |b| {
        // ORDER BY subsumed by the index order: LIMIT 10 pulls exactly ten
        // entries and stops, however many rows match the predicate.
        let stmt =
            parse("SELECT score FROM users WHERE score >= ? ORDER BY score LIMIT 10").unwrap();
        let mut s = 0i64;
        b.iter(|| {
            s = (s + 7) % 504;
            let txn = client.begin();
            let rs = yesquel_sql::execute(&catalog, &txn, &stmt, &[Value::Int(s)]).unwrap();
            txn.commit().unwrap();
            black_box(rs)
        });
    });

    c.bench_function("sql/group_by_agg", |b| {
        // Streamed GROUP BY over the covering index: 8 contiguous groups of
        // ~8 rows each, one group of aggregate state live at a time.
        let stmt = parse(
            "SELECT score, COUNT(*), SUM(score) FROM users \
             WHERE score >= ? AND score < ? GROUP BY score",
        )
        .unwrap();
        let mut s = 0i64;
        b.iter(|| {
            s = (s + 7) % 504;
            let txn = client.begin();
            let rs =
                yesquel_sql::execute(&catalog, &txn, &stmt, &[Value::Int(s), Value::Int(s + 8)])
                    .unwrap();
            txn.commit().unwrap();
            black_box(rs)
        });
    });
    c.bench_function("sql/insert_row", |b| {
        // Transactional INSERT maintaining the secondary index, committed.
        let stmt = parse("INSERT INTO users (name, score) VALUES (?, ?)").unwrap();
        let mut i = ROWS;
        b.iter(|| {
            i += 1;
            client
                .run_txn(|txn| {
                    yesquel_sql::execute(
                        &catalog,
                        txn,
                        &stmt,
                        &[Value::Text(format!("new-{i}")), Value::Int(i % 512)],
                    )
                })
                .unwrap()
        });
    });
}

fn bench_session(c: &mut Criterion) {
    // The facade paths: a Session with its statement cache (repeated
    // statement texts skip the parse and the plan) and prepared handles
    // (no text re-hash either — the handle owns the plan).  Against
    // sql/point_select_pk (which re-parses and re-plans each iteration)
    // sql/point_select_pk_cached isolates the statement-cache win, and
    // sql/prepared_point_select the remaining cost of the text hash +
    // cache probe.
    let mut config = YesquelConfig::with_servers(4);
    config.dbt.split_mode = SplitMode::Synchronous;
    config.dbt.load_splits = false;
    let y = yesquel::Yesquel::open_with(config);
    y.execute(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, score INT NOT NULL)",
        &[],
    )
    .unwrap();
    for i in 0..ROWS {
        y.execute(
            "INSERT INTO users (name, score) VALUES (?, ?)",
            &[Value::Text(format!("user-{i}")), Value::Int(i % 512)],
        )
        .unwrap();
    }
    for i in 0..ROWS {
        y.execute(
            "SELECT name, score FROM users WHERE id = ?",
            &[Value::Int(i + 1)],
        )
        .unwrap();
    }

    c.bench_function("sql/point_select_pk_cached", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % ROWS;
            let rs = y
                .execute(
                    "SELECT name, score FROM users WHERE id = ?",
                    &[Value::Int(i + 1)],
                )
                .unwrap();
            assert_eq!(rs.rows.len(), 1);
            black_box(rs)
        });
    });

    c.bench_function("sql/prepared_point_select", |b| {
        // Handle reuse: zero parse, zero plan, zero statement-cache probe
        // per execution — bind the parameter and run.
        let prep = y
            .session()
            .prepare("SELECT name, score FROM users WHERE id = ?")
            .unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % ROWS;
            let rs = prep.execute(params![i + 1]).unwrap();
            assert_eq!(rs.rows.len(), 1);
            black_box(rs)
        });
    });

    c.bench_function("sql/prepared_insert", |b| {
        // Transactional INSERT maintaining the secondary index through a
        // reused handle, committed per call.  Runs last in this group so
        // the point-select benches above see a stable table size.
        let prep = y
            .session()
            .prepare("INSERT INTO users (name, score) VALUES (?1, ?2)")
            .unwrap();
        let mut i = ROWS;
        b.iter(|| {
            i += 1;
            let rs = prep.execute(params![format!("new-{i}"), i % 512]).unwrap();
            black_box(rs)
        });
    });
}

criterion_group!(sql_benches, bench_frontend, bench_execution, bench_session);
criterion_main!(sql_benches);
