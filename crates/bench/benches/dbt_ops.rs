fn main() {}
