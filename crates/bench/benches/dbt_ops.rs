//! Benchmarks of the distributed-balanced-tree read/write paths.
//!
//! `dbt/point_read_warm` is the paper's headline case: a warm client cache
//! means the lookup fetches exactly one node (the leaf).  The cold and
//! no-cache variants quantify what the cache buys.  Run with
//! `cargo bench -p yesquel-bench --bench dbt_ops`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use yesquel_bench::{bench_key, loaded_tree};
use yesquel_common::config::SplitMode;
use yesquel_common::DbtConfig;

const SERVERS: usize = 4;
const KEYS: u64 = 4096;

fn tree_cfg() -> DbtConfig {
    DbtConfig {
        // Synchronous splits keep the loaded tree deterministic (no
        // background splitter racing the measurement loop).
        split_mode: SplitMode::Synchronous,
        load_splits: false,
        ..DbtConfig::default()
    }
}

fn bench_point_read(c: &mut Criterion) {
    let (db, engine, dbt) = loaded_tree(SERVERS, KEYS, tree_cfg());
    let client = db.client();

    // Warm the cache once.
    {
        let txn = client.begin();
        for i in 0..KEYS {
            dbt.lookup(&txn, &bench_key(i)).unwrap();
        }
        txn.commit().unwrap();
    }

    c.bench_function("dbt/point_read_warm", |b| {
        let txn = client.begin();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % KEYS;
            black_box(dbt.lookup(&txn, &bench_key(i)).unwrap())
        });
    });

    c.bench_function("dbt/point_read_warm_with_txn", |b| {
        // Includes begin + read-only commit, i.e. a whole auto-commit point
        // query as an application would issue it.
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % KEYS;
            let txn = client.begin();
            let v = dbt.lookup(&txn, &bench_key(i)).unwrap();
            txn.commit().unwrap();
            black_box(v)
        });
    });

    c.bench_function("dbt/point_read_cold", |b| {
        // Cache dropped before every lookup: the search walks from the
        // root.  The invalidation happens in the untimed setup phase so the
        // recorded number is the cold lookup alone.
        let txn = client.begin();
        let mut i = 0u64;
        b.iter_batched(
            || {
                engine.invalidate_cache(dbt.tree_id());
                i = (i + 1) % KEYS;
                bench_key(i)
            },
            |key| black_box(dbt.lookup(&txn, &key).unwrap()),
            criterion::BatchSize::PerIteration,
        );
    });
}

fn bench_point_read_no_cache(c: &mut Criterion) {
    // The F4 ablation configuration: caching disabled entirely.
    let cfg = DbtConfig {
        cache_inner_nodes: false,
        back_down_search: false,
        ..tree_cfg()
    };
    let (db, _engine, dbt) = loaded_tree(SERVERS, KEYS, cfg);
    let client = db.client();
    c.bench_function("dbt/point_read_no_cache", |b| {
        let txn = client.begin();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % KEYS;
            black_box(dbt.lookup(&txn, &bench_key(i)).unwrap())
        });
    });
}

fn bench_scan(c: &mut Criterion) {
    let (db, _engine, dbt) = loaded_tree(SERVERS, KEYS, tree_cfg());
    let client = db.client();
    // Warm the cache once.
    {
        let txn = client.begin();
        for i in 0..KEYS {
            dbt.lookup(&txn, &bench_key(i)).unwrap();
        }
        txn.commit().unwrap();
    }
    c.bench_function("dbt/scan_100", |b| {
        // A warm 100-row range scan: one find_leaf, then cells streamed
        // straight out of the leaf views (zero-copy Bytes per row).
        let txn = client.begin();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 97) % (KEYS - 100);
            let mut rows = 0u64;
            for item in dbt
                .scan(&txn, Some(&bench_key(i)), Some(&bench_key(i + 100)))
                .unwrap()
            {
                let (k, v) = item.unwrap();
                black_box((&k, &v));
                rows += 1;
            }
            assert_eq!(rows, 100);
            black_box(rows)
        });
    });
}

fn bench_insert(c: &mut Criterion) {
    let (db, _engine, dbt) = loaded_tree(SERVERS, KEYS, tree_cfg());
    let client = db.client();
    c.bench_function("dbt/insert_commit", |b| {
        let mut i = KEYS;
        b.iter(|| {
            i += 1;
            client
                .run_txn(|txn| dbt.insert(txn, &bench_key(i), b"inserted"))
                .unwrap()
        });
    });
    c.bench_function("dbt/update_commit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % KEYS;
            client
                .run_txn(|txn| dbt.insert(txn, &bench_key(i), b"updated"))
                .unwrap()
        });
    });
}

criterion_group!(
    dbt_benches,
    bench_point_read,
    bench_point_read_no_cache,
    bench_scan,
    bench_insert
);
criterion_main!(dbt_benches);
