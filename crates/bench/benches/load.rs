//! The multi-threaded load harness entry point: sweeps closed-loop load
//! cells over thread count, server count, `wal_fsync` policy, contention,
//! and request batching, printing one JSON line per cell and (with
//! `LOAD_JSON_OUT=<path>`) writing the full `BENCH_*_LOAD.json` report.
//!
//! * `BENCH_SMOKE=1` or `LOAD_SMOKE=1`: a seconds-long CI smoke — two
//!   threads, two servers, all three fsync policies, tiny cells — that
//!   proves the harness runs end to end.
//! * Otherwise: the full sweep (a few minutes). `LOAD_CELL_MS` overrides
//!   the per-cell measured duration (default 1200 ms).

use std::time::Duration;

use yesquel_bench::load::{
    commit_mix, read_heavy_mix, render_load_report, run_load, LoadResult, LoadSpec,
};
use yesquel_common::config::SplitMode;
use yesquel_common::{DbtConfig, NetConfig, RpcBatchConfig, WalFsyncPolicy};
use yesquel_rpc::TransportKind;

const WAL_POLICIES: [WalFsyncPolicy; 4] = [
    WalFsyncPolicy::Off,
    WalFsyncPolicy::Always,
    WalFsyncPolicy::Group { window_us: 50 },
    WalFsyncPolicy::Group { window_us: 100 },
];

/// The modelled network for the scale-out sweeps: slept 50us one-way
/// latency plus 500us of slept per-request *service time* occupying a
/// server worker.  With the bottleneck in slept time rather than host
/// CPU, per-server capacity is `workers / service_time` (here one worker
/// -> 2k requests/s per server) and the scaling curve is measurable on
/// any machine, even a single-core CI box whose own CPU ceiling sits far
/// above the modelled aggregate.
fn modelled_net() -> NetConfig {
    NetConfig {
        one_way_latency_us: 50,
        bytes_per_us: 0,
        sleep_latency: true,
        service_time_us: 500,
    }
}

/// The scale-out mix: commit-dominated (1PC/2PC RPCs are what consume
/// modelled server capacity) plus warm SQL point selects.  SQL inserts
/// are deliberately excluded here: every insert lands on the same few
/// DBT leaf pages of one table, so under many threads they serialize on
/// write-write conflicts and retry backoff — a real hotspot (the paper
/// solves it with load-aware splitting, still an open item), but one
/// that would swamp the server-capacity signal this sweep is after.
/// Inserts stay covered by the smoke cells' default mixed workload.
fn scale_mix() -> Vec<(yesquel_bench::load::OpClass, u32)> {
    use yesquel_bench::load::OpClass;
    vec![
        (OpClass::Select, 20),
        (OpClass::Kv1pc, 50),
        (OpClass::Kv2pc, 30),
    ]
}

/// DBT configuration of the replication sweep.  Both the "on" and the
/// "off" cells use this — identical delegated maintenance, load splits,
/// and threshold — so the only swept variable is `replicate_hot_nodes`
/// itself.  The factor is high enough that a hot node gets a copy on
/// every server (capped at `servers - 1` at promotion time), and the
/// low threshold keeps the promotion ramp-up short relative to the
/// measured cell.
fn replication_dbt(replicate: bool) -> DbtConfig {
    DbtConfig {
        split_mode: SplitMode::Delegated,
        load_splits: true,
        load_split_threshold: 200,
        replica_factor: 7,
        replicate_hot_nodes: replicate,
        ..DbtConfig::default()
    }
}

fn run_cell(spec: LoadSpec, results: &mut Vec<LoadResult>) {
    let r = run_load(&spec);
    println!("{}", yesquel_bench::load::render_result(&r));
    results.push(r);
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok() || std::env::var("LOAD_SMOKE").is_ok();
    let cell_ms: u64 = std::env::var("LOAD_CELL_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 40 } else { 1200 });
    let cell = Duration::from_millis(cell_ms);
    let mut results = Vec::new();

    if smoke {
        // Tiny cells across all three fsync policies: the point is that
        // every code path (WAL group commit, batching, parallel fan-out)
        // executes, not that the numbers mean anything.
        for policy in WAL_POLICIES {
            let mut spec = LoadSpec::new("smoke", 2, 2, cell);
            spec.wal = Some(policy);
            spec.rpc_batch = Some(RpcBatchConfig {
                window_us: 20,
                max_batch: 8,
                linger_us: 0,
            });
            run_cell(spec, &mut results);
        }
        // One replicated cell so the read-any/write-all path runs in CI:
        // read-heavy traffic on a small hot range with the replication
        // machinery on.
        let mut spec = LoadSpec::new(
            "smoke_replication",
            2,
            2,
            cell.max(Duration::from_millis(80)),
        );
        spec.mix = read_heavy_mix();
        spec.hot_select_range = Some(8);
        spec.scatter_inserts = true;
        spec.dbt = Some(replication_dbt(true));
        run_cell(spec, &mut results);
        // One sampled-tracing cell so the span machinery (trace start,
        // per-layer spans, slow-op ring) runs end to end in CI.
        let mut spec = LoadSpec::new("smoke_traced", 2, 2, cell);
        spec.trace_sample_every = 8;
        run_cell(spec, &mut results);
        maybe_write_report(&results, "smoke run");
        return;
    }

    // Sweep A — scaling: commit-dominated workload over threads x
    // servers under the modelled network (slept latency + per-request
    // service time on one worker per server).  Each server serves 2k
    // requests/s; as client threads grow, a small deployment saturates
    // while a larger one keeps scaling — the paper's scale-out curve.
    // The parallel fan-out has real waits to overlap here.
    for &servers in &[1usize, 2, 4, 8] {
        for &threads in &[1usize, 2, 4, 8, 16] {
            let mut spec = LoadSpec::new("scaling", threads, servers, cell);
            spec.mix = scale_mix();
            spec.transport = TransportKind::Threaded {
                workers_per_server: 1,
            };
            spec.net = Some(modelled_net());
            run_cell(spec, &mut results);
        }
    }

    // Sweep B — durability: commit-heavy workload against a real on-disk
    // WAL under each fsync policy, over thread count.  This is the
    // group-commit amortisation curve: `always` pays one fsync per
    // commit regardless of concurrency; `group{100}` lets concurrent
    // committers share, so it crosses over as threads grow.  One server,
    // so the thread count IS the number of committers sharing that
    // server's log; Direct transport so commit concurrency is bounded by
    // client threads, not server workers.
    for policy in WAL_POLICIES {
        for &threads in &[1usize, 2, 4, 8, 16] {
            let mut spec = LoadSpec::new("wal", threads, 1, cell);
            spec.mix = commit_mix();
            spec.wal = Some(policy);
            spec.key_pool = 4096;
            run_cell(spec, &mut results);
        }
    }

    // Sweep C — contention: same commit-heavy workload, hot vs cool key
    // pool, under the modelled network.  The hot pool forces write-write
    // conflicts (first-committer-wins aborts plus client retries) and
    // shows up in kv.txn_conflicts.
    for &key_pool in &[64u64, 4096] {
        let mut spec = LoadSpec::new("contention", 8, 4, cell);
        spec.mix = commit_mix();
        spec.key_pool = key_pool;
        spec.transport = TransportKind::Threaded {
            workers_per_server: 1,
        };
        spec.net = Some(modelled_net());
        run_cell(spec, &mut results);
    }

    // Sweep D — batching: many threads hammering two servers whose
    // capacity is service-time bound, with and without the batching
    // decorator, and with the Nagle-style linger on top.  A coalesced
    // frame costs one service slot for the whole group, so batching buys
    // back server capacity under pressure; lingering trades leader latency
    // for fewer solo frames when concurrency trickles.
    for &batch in &[
        None,
        Some(RpcBatchConfig {
            window_us: 100,
            max_batch: 16,
            linger_us: 0,
        }),
        Some(RpcBatchConfig {
            window_us: 100,
            max_batch: 16,
            linger_us: 200,
        }),
    ] {
        let mut spec = LoadSpec::new("batching", 16, 2, cell);
        spec.mix = commit_mix();
        spec.rpc_batch = batch;
        spec.transport = TransportKind::Threaded {
            workers_per_server: 1,
        };
        spec.net = Some(modelled_net());
        run_cell(spec, &mut results);
    }

    // Sweep E — replication: point selects aimed at a SINGLE hot row,
    // over server count, with hot-node replication on vs off and
    // everything else — delegated maintenance, load splits, threshold —
    // held identical.  One row is the case load splits cannot help: a
    // read-heavy leaf with replication off does load-split, but the hot
    // row lands in exactly one half, so its heat follows one page down
    // to a single-cell leaf and stays on one server whose modelled
    // capacity (2k requests/s) caps read throughput no matter how many
    // servers exist — the curve is flat.  On, that page is promoted to
    // a replica set spanning every server and read-any spreads the
    // fetches, so the curve climbs with server count.  The mix is pure
    // selects: an insert trickle turns out to drown the signal in
    // closed-loop conflict-retry stalls (all fresh ids funnel into the
    // one rightmost leaf — see the mixed pair below, which measures
    // exactly that cost).
    for &servers in &[1usize, 2, 4, 8] {
        for &replication in &[false, true] {
            let name = if replication {
                "replication_on"
            } else {
                "replication_off"
            };
            let mut spec = LoadSpec::new(name, 16, servers, cell);
            spec.mix = vec![(yesquel_bench::load::OpClass::Select, 100)];
            spec.hot_select_range = Some(1);
            spec.dbt = Some(replication_dbt(replication));
            spec.transport = TransportKind::Threaded {
                workers_per_server: 1,
            };
            spec.net = Some(modelled_net());
            run_cell(spec, &mut results);
        }
    }

    // Sweep E' — the same hot-range read traffic with a 10% trickle of
    // scattered-id inserts, at a fixed deployment: the honest cost view.
    // Inserts conflict-retry on the tail leaf and stall the closed loop
    // in both cells (too few land per heat window to trip a load split);
    // the on-cell additionally pays write-all fan-out and maintenance
    // traffic, which widens the conflict window further.  The pair
    // measures what the insert hotspot costs and what replication adds
    // on top of it — see the ROADMAP replication section's open items
    // (demotion, conflict-aware heat) for the remedies this motivates.
    for &replication in &[false, true] {
        let name = if replication {
            "replication_mixed_on"
        } else {
            "replication_mixed_off"
        };
        let mut spec = LoadSpec::new(name, 16, 4, cell);
        spec.mix = read_heavy_mix();
        spec.hot_select_range = Some(8);
        spec.scatter_inserts = true;
        spec.dbt = Some(replication_dbt(replication));
        spec.transport = TransportKind::Threaded {
            workers_per_server: 1,
        };
        spec.net = Some(modelled_net());
        run_cell(spec, &mut results);
    }

    // Sweep F — observability overhead: the same mixed workload at a
    // fixed deployment with (1) timing histograms off entirely, (2) the
    // default pay-as-you-go mode (histograms on, tracing off — the
    // configuration every other sweep above runs under), and (3) 1-in-64
    // sampled tracing on top.  The off/default pair bounds what the
    // histogram records cost on the hot paths; the default/sampled pair
    // is the honest disclosure of what turning traces on costs.
    for &(name, timing, sample_every) in &[
        ("obs_off", false, 0u32),
        ("obs_default", true, 0),
        ("obs_sampled", true, 64),
    ] {
        let mut spec = LoadSpec::new(name, 8, 2, cell);
        spec.obs_timing = timing;
        spec.trace_sample_every = sample_every;
        run_cell(spec, &mut results);
    }

    maybe_write_report(&results, "full sweep");
}

fn maybe_write_report(results: &[LoadResult], kind: &str) {
    if let Ok(path) = std::env::var("LOAD_JSON_OUT") {
        let report = render_load_report(
            "BENCH_10_LOAD",
            &format!(
                "Closed-loop multi-threaded load harness ({kind}): ops/sec, \
                 nearest-rank p50/p99/p999 per op class, and full per-subsystem \
                 latency histograms (log-bucketed, rel err <= 1/64) per cell, swept \
                 over threads, servers, wal_fsync policy, contention, request \
                 batching (incl. Nagle-style linger), hot-node replication, and \
                 observability mode (timing off / histograms on / 1-in-64 sampled \
                 tracing). One JSON object per cell under 'runs'."
            ),
            results,
        );
        std::fs::write(&path, report).expect("write LOAD_JSON_OUT");
        eprintln!("wrote {} cells to {path}", results.len());
    }
}
