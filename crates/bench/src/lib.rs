//! Benchmark harness support: deployment builders shared by the criterion
//! benches and the hand-rolled JSON report writer that produces the
//! `BENCH_*.json` baselines checked into the repository root.

use std::fmt::Write as _;

pub mod load;

use yesquel_common::tempdir::TempDir;
use yesquel_common::{DbtConfig, WalFsyncPolicy, YesquelConfig};
use yesquel_kv::KvDatabase;
use yesquel_ydbt::{Dbt, DbtEngine};

/// A standard deployment for kv-level benches: `n` servers, direct
/// transport, no simulated network cost, no write-ahead log.
pub fn kv_deployment(n: usize) -> KvDatabase {
    KvDatabase::new(YesquelConfig::with_servers(n))
}

/// A durable deployment: every server logs to a per-server write-ahead log
/// under a self-cleaning temp directory (returned so the caller keeps it
/// alive for the life of the database).
pub fn durable_kv_deployment(n: usize, policy: WalFsyncPolicy) -> (KvDatabase, TempDir) {
    let tmp = TempDir::new("yesquel-bench-wal").expect("bench tempdir");
    let mut cfg = YesquelConfig::with_servers(n);
    cfg.kv.wal_dir = Some(tmp.path().to_path_buf());
    cfg.kv.wal_fsync = policy;
    (KvDatabase::new(cfg), tmp)
}

/// A deployment plus a tree pre-loaded with `keys` sequential i64 keys, used
/// by the DBT point-read benches.  Returns the database, the engine whose
/// cache is warm from loading, and the tree handle.
pub fn loaded_tree(
    n_servers: usize,
    keys: u64,
    cfg: DbtConfig,
) -> (KvDatabase, std::sync::Arc<DbtEngine>, Dbt) {
    let db = kv_deployment(n_servers);
    let engine = DbtEngine::new(db.client(), cfg);
    engine.create_tree(1).expect("fresh deployment");
    let dbt = engine.tree(1);
    let client = db.client();
    for i in 0..keys {
        client
            .run_txn(|txn| dbt.insert(txn, &bench_key(i), b"benchmark-value"))
            .expect("load");
    }
    engine.wait_for_splits();
    (db, engine, dbt)
}

/// The order-preserving key used by every bench (8 bytes, sorted by i64).
pub fn bench_key(i: u64) -> [u8; 8] {
    yesquel_common::encoding::order_encode_i64(i as i64)
}

/// One row of a benchmark report.
#[derive(Debug, Clone)]
pub struct ReportEntry {
    /// Benchmark name.
    pub name: String,
    /// Mean nanoseconds per operation.
    pub mean_ns: f64,
    /// Median nanoseconds per operation.
    pub median_ns: f64,
    /// p95 nanoseconds per operation.
    pub p95_ns: f64,
}

/// Renders entries as the stable JSON layout used by `BENCH_*.json`
/// (hand-rolled; the offline build has no serde/serde_json).
pub fn render_report(label: &str, entries: &[ReportEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"results\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}}}{comma}",
            e.name, e.mean_ns, e.median_ns, e.p95_ns
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_valid_shape() {
        let entries = vec![
            ReportEntry {
                name: "a".into(),
                mean_ns: 1.5,
                median_ns: 1.0,
                p95_ns: 2.0,
            },
            ReportEntry {
                name: "b".into(),
                mean_ns: 10.0,
                median_ns: 9.0,
                p95_ns: 20.0,
            },
        ];
        let s = render_report("BENCH_TEST", &entries);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert_eq!(s.matches("\"name\"").count(), 2);
        assert!(!s.contains("},\n  ]"), "no trailing comma: {s}");
    }

    #[test]
    fn loaded_tree_is_queryable() {
        let (db, _engine, dbt) = loaded_tree(2, 50, DbtConfig::default());
        let txn = db.client().begin();
        assert_eq!(
            dbt.lookup(&txn, &bench_key(7)).unwrap().as_deref(),
            Some(&b"benchmark-value"[..])
        );
        txn.commit().unwrap();
    }
}
