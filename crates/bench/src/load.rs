//! Multi-threaded closed-loop load harness.
//!
//! The criterion benches measure single-threaded operation latency; this
//! module measures what they cannot: throughput and tail latency under
//! **concurrent** clients, which is where group commit, request batching,
//! and the parallel 2PC fan-out actually earn their keep.  `N` client
//! threads each run a closed loop (issue an operation, wait for it, issue
//! the next) against one in-process deployment of `M` storage servers,
//! drawing operations from a weighted mix of op classes:
//!
//! * `select` — SQL point select by primary key over a preloaded table,
//! * `insert` — SQL insert of a fresh row (no write-write conflicts),
//! * `scan`   — SQL bounded range scan (`>= ? AND < ? ORDER BY ... LIMIT`),
//! * `kv_1pc` — a raw KV transaction writing objects on one server
//!   (one-phase commit),
//! * `kv_2pc` — a raw KV transaction writing objects on two distinct
//!   servers (two-phase commit, exercising the parallel prepare fan-out).
//!
//! Contention is controlled by `key_pool`: KV writes pick their objects
//! uniformly from a pool of that many keys, so a small pool forces
//! write-write conflicts (visible as `kv.txn_conflicts` in the report).
//! Every run reports ops/sec, exact nearest-rank p50/p99/p999 latency per
//! op class, the deployment counters that explain the numbers (fsyncs,
//! group sizes, batched requests, parallel fan-outs, replica reads and
//! promotions), and — since PR 10 — every non-empty latency histogram
//! (log-bucketed, relative error ≤ 1/64) so each cell carries full
//! per-subsystem distributions, not just per-class percentiles.  The
//! `load` bench binary sweeps these specs and writes
//! `BENCH_10_LOAD.json`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yesquel::{params, Yesquel};
use yesquel_common::config::SplitMode;
use yesquel_common::stats::HistogramSummary;
use yesquel_common::tempdir::TempDir;
use yesquel_common::{
    CommitFanout, DbtConfig, NetConfig, ObjectId, RpcBatchConfig, WalFsyncPolicy, YesquelConfig,
};
use yesquel_kv::KvDatabase;
use yesquel_rpc::TransportKind;

/// The operation classes a load mix draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// SQL point select by primary key.
    Select,
    /// SQL insert of a fresh row.
    Insert,
    /// SQL bounded range scan.
    Scan,
    /// Raw KV write transaction confined to one server (1PC).
    Kv1pc,
    /// Raw KV write transaction spanning two servers (2PC).
    Kv2pc,
}

impl OpClass {
    /// All classes, in report order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Select,
        OpClass::Insert,
        OpClass::Scan,
        OpClass::Kv1pc,
        OpClass::Kv2pc,
    ];

    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Select => "select",
            OpClass::Insert => "insert",
            OpClass::Scan => "scan",
            OpClass::Kv1pc => "kv_1pc",
            OpClass::Kv2pc => "kv_2pc",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::Select => 0,
            OpClass::Insert => 1,
            OpClass::Scan => 2,
            OpClass::Kv1pc => 3,
            OpClass::Kv2pc => 4,
        }
    }
}

/// The mixed read/write workload used by the scaling sweeps.
pub fn mixed_mix() -> Vec<(OpClass, u32)> {
    vec![
        (OpClass::Select, 35),
        (OpClass::Insert, 15),
        (OpClass::Scan, 10),
        (OpClass::Kv1pc, 25),
        (OpClass::Kv2pc, 15),
    ]
}

/// The commit-heavy workload used by the `wal_fsync` sweep: every
/// operation ends in a durable commit, so fsync policy dominates.
pub fn commit_mix() -> Vec<(OpClass, u32)> {
    vec![(OpClass::Kv1pc, 60), (OpClass::Kv2pc, 40)]
}

/// The read-heavy workload used by the replication sweep: dominated by
/// point selects (which, aimed at a small hot range via
/// [`LoadSpec::hot_select_range`], all land on one leaf) plus a trickle of
/// inserts so the write-all path runs under the same load.
pub fn read_heavy_mix() -> Vec<(OpClass, u32)> {
    vec![(OpClass::Select, 90), (OpClass::Insert, 10)]
}

/// One load-harness configuration cell.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Sweep label (e.g. `"scaling"`, `"wal"`).
    pub workload: String,
    /// Number of closed-loop client threads.
    pub threads: usize,
    /// Number of storage servers.
    pub servers: usize,
    /// How long the measured phase runs.
    pub duration: Duration,
    /// Weighted op mix (weights need not sum to anything particular).
    pub mix: Vec<(OpClass, u32)>,
    /// KV write key-pool size per server; smaller is hotter.
    pub key_pool: u64,
    /// `None` runs without a write-ahead log; `Some(policy)` attaches one
    /// per server under a temp directory with the given fsync policy.
    pub wal: Option<WalFsyncPolicy>,
    /// Transport between clients and servers.
    pub transport: TransportKind,
    /// Simulated network/service model; `None` keeps the free default.
    /// The scale-out sweeps set slept latency + per-request service time
    /// so the bottleneck is modelled server capacity, not host cores.
    pub net: Option<NetConfig>,
    /// Optional request-batching decorator configuration.
    pub rpc_batch: Option<RpcBatchConfig>,
    /// 2PC fan-out strategy.
    pub commit_fanout: CommitFanout,
    /// Seed for the per-thread operation generators.
    pub seed: u64,
    /// DBT configuration override.  `None` keeps the harness baseline
    /// (synchronous splits, load splits and replication off) so cells stay
    /// comparable across reports; the replication sweep supplies a full
    /// config here.
    pub dbt: Option<DbtConfig>,
    /// When set, point selects draw their ids from `0..n` instead of the
    /// whole preloaded table — a deliberate read hot spot landing on one
    /// DBT leaf, the workload hot-node replication exists for.
    pub hot_select_range: Option<i64>,
    /// When set, inserted ids are the bit-reversal of the shared counter
    /// instead of the counter itself: still unique, but spread uniformly
    /// over the id domain rather than all appending to the rightmost
    /// leaf.  Sequential append makes concurrent inserts conflict-storm
    /// on one page (a real hotspot, documented in ROADMAP "Scale-out");
    /// the replication sweep scatters them so its read-scaling signal is
    /// not drowned by that separate, already-known collapse.
    pub scatter_inserts: bool,
    /// Record latency histograms during the measured phase (two clock reads
    /// per instrumented site).  On by default so every report cell carries
    /// full latency distributions next to its nearest-rank percentiles.
    pub obs_timing: bool,
    /// Sample 1-in-N operations into a full trace (0 = off).  The overhead
    /// cell sets this to disclose the cost of sampled tracing honestly.
    pub trace_sample_every: u32,
}

impl LoadSpec {
    /// A spec with the mixed workload and library defaults everywhere else.
    pub fn new(workload: &str, threads: usize, servers: usize, duration: Duration) -> Self {
        LoadSpec {
            workload: workload.to_string(),
            threads,
            servers,
            duration,
            mix: mixed_mix(),
            key_pool: 1024,
            wal: None,
            transport: TransportKind::Direct,
            net: None,
            rpc_batch: None,
            commit_fanout: CommitFanout::Auto,
            seed: 0x10ad,
            dbt: None,
            hot_select_range: None,
            scatter_inserts: false,
            obs_timing: true,
            trace_sample_every: 0,
        }
    }

    /// Stable label for the WAL column of the report.
    pub fn wal_label(&self) -> String {
        match self.wal {
            None => "none".to_string(),
            Some(WalFsyncPolicy::Off) => "off".to_string(),
            Some(WalFsyncPolicy::Always) => "always".to_string(),
            Some(WalFsyncPolicy::Group { window_us }) => format!("group{window_us}"),
        }
    }
}

/// Latency summary for one op class within a run.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Which class.
    pub class: OpClass,
    /// Operations completed successfully.
    pub count: u64,
    /// Operations that failed (after the client library's own retries).
    pub errors: u64,
    /// Nearest-rank percentiles over successful-op latencies, microseconds.
    pub p50_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// 99.9th percentile, microseconds.
    pub p999_us: u64,
}

/// The outcome of one `run_load` cell.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// The spec that produced this result (WAL label pre-rendered).
    pub workload: String,
    /// Client threads.
    pub threads: usize,
    /// Storage servers.
    pub servers: usize,
    /// WAL column label (`none`/`off`/`always`/`group{window}`).
    pub wal: String,
    /// KV write key-pool size.
    pub key_pool: u64,
    /// Whether request batching was on.
    pub batched: bool,
    /// Measured wall-clock duration, seconds.
    pub elapsed_s: f64,
    /// Total successful operations across all classes.
    pub ops: u64,
    /// Throughput.
    pub ops_per_sec: f64,
    /// Per-class latency summaries (only classes present in the mix).
    pub classes: Vec<ClassStats>,
    /// Selected deployment counters after the run.
    pub counters: Vec<(String, u64)>,
    /// Every non-empty latency histogram after the run: name, summary, and
    /// the non-zero `[low, high, count]` buckets (a consumer can recompute
    /// any quantile).  Empty when the cell ran with `obs_timing` off.
    pub histograms: Vec<HistogramCell>,
}

/// One exported histogram: name, summary, and its non-zero
/// `(low, high, count)` buckets.
pub type HistogramCell = (String, HistogramSummary, Vec<(u64, u64, u64)>);

/// Exact nearest-rank percentile: the smallest sample such that at least
/// `q` of the distribution is ≤ it.  `sorted` must be ascending and
/// non-empty; `q` in (0, 1].  With `n` samples the rank is `ceil(q·n)`
/// clamped to `[1, n]`, so p50 of `[10, 20]` is 10 (the first sample
/// already covers half the distribution) and any percentile of a single
/// sample is that sample.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!(q > 0.0 && q <= 1.0, "quantile out of range: {q}");
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Sorts `samples` and returns `(p50, p99, p999)`; all zero when empty.
pub fn latency_summary(samples: &mut [u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    samples.sort_unstable();
    (
        percentile(samples, 0.50),
        percentile(samples, 0.99),
        percentile(samples, 0.999),
    )
}

/// The counters worth reporting alongside throughput: they explain *why*
/// a cell is fast or slow (fsyncs amortised, requests coalesced, prepares
/// overlapped, conflicts suffered).
const REPORT_COUNTERS: [&str; 14] = [
    "wal.appends",
    "wal.fsyncs",
    "wal.group_size",
    "wal.group_solo",
    "kv.txn_conflicts",
    "kv.txn_retries",
    "kv.prepare_parallel_fanouts",
    "rpc.batches",
    "rpc.batched_requests",
    "rpc.batch_linger_waits",
    "dbt.replica_reads",
    "dbt.replica_fanout_writes",
    "dbt.replica_promotions",
    "dbt.load_splits",
];

// KV load objects live in their own tree id, far above anything the SQL
// catalog will ever allocate, so raw writes never collide with table trees.
const LOAD_TREE: u64 = 0x10ad_0000_0000;

/// Rows preloaded into the SQL table for selects and scans.
const SQL_ROWS: i64 = 512;

/// Runs one load cell: builds the deployment, preloads it, drives the
/// closed loop from `spec.threads` threads for `spec.duration`, and
/// summarises.
pub fn run_load(spec: &LoadSpec) -> LoadResult {
    let mut cfg = YesquelConfig::with_servers(spec.servers);
    match &spec.dbt {
        Some(dbt) => cfg.dbt = dbt.clone(),
        None => {
            // Baseline: no background tree maintenance, so cells measure the
            // swept variable and nothing else (and stay comparable with
            // reports recorded before hot-node replication existed).
            cfg.dbt.split_mode = SplitMode::Synchronous;
            cfg.dbt.load_splits = false;
            cfg.dbt.replicate_hot_nodes = false;
        }
    }
    cfg.kv.commit_fanout = spec.commit_fanout;
    cfg.rpc_batch = spec.rpc_batch;
    if let Some(net) = &spec.net {
        cfg.net = net.clone();
    }
    let _wal_tmp: Option<TempDir> = spec.wal.map(|policy| {
        let tmp = TempDir::new("yesquel-load-wal").expect("load harness tempdir");
        cfg.kv.wal_dir = Some(tmp.path().to_path_buf());
        cfg.kv.wal_fsync = policy;
        tmp
    });
    cfg.obs.timing = spec.obs_timing;
    cfg.obs.trace_sample_every = spec.trace_sample_every;
    let db = KvDatabase::with_transport(cfg, spec.transport);
    let y = Yesquel::open_db(db).expect("load harness bootstrap");

    // Preload the SQL side.
    y.execute(
        "CREATE TABLE load (id INTEGER PRIMARY KEY, grp INT NOT NULL, val INT NOT NULL)",
        &[],
    )
    .expect("create load table");
    {
        let ins = y
            .session()
            .prepare("INSERT INTO load (id, grp, val) VALUES (?, ?, ?)")
            .expect("prepare preload insert");
        for i in 0..SQL_ROWS {
            ins.execute(params![i, i % 16, 0]).expect("preload row");
        }
    }
    y.engine().wait_for_splits();

    // Build per-server KV object pools: walk oids, bucketing by home
    // server, until every server has its share of the key pool.
    let per_server_pool = ((spec.key_pool as usize) / spec.servers).max(4);
    let mut pools: Vec<Vec<ObjectId>> = vec![Vec::new(); spec.servers];
    let mut oid = yesquel_common::ids::FIRST_NODE_OID;
    while pools.iter().any(|p| p.len() < per_server_pool) {
        let obj = ObjectId::new(LOAD_TREE, oid);
        let home = obj.home_server(spec.servers);
        if pools[home].len() < per_server_pool {
            pools[home].push(obj);
        }
        oid += 1;
    }

    // Drop everything accumulated during preload — counters, latency
    // histograms, and the slow-op ring — so the report reflects the
    // measured phase only.
    y.db().stats().reset();

    let insert_next = AtomicU64::new(SQL_ROWS as u64 + 1_000_000);
    let started = Instant::now();
    let deadline = started + spec.duration;

    let merged: Vec<ThreadRecord> = std::thread::scope(|scope| {
        let pools = &pools;
        let insert_next = &insert_next;
        let y = &y;
        (0..spec.threads)
            .map(|t| {
                scope.spawn(move || run_thread(y, spec, pools, insert_next, deadline, t as u64))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    // Merge per-thread records into per-class summaries.
    let mut classes = Vec::new();
    let mut total_ops = 0u64;
    for class in OpClass::ALL {
        let i = class.index();
        if !spec.mix.iter().any(|&(c, w)| c == class && w > 0) {
            continue;
        }
        let mut lats: Vec<u64> = Vec::new();
        let mut errors = 0u64;
        for rec in &merged {
            lats.extend_from_slice(&rec.latencies_us[i]);
            errors += rec.errors[i];
        }
        let count = lats.len() as u64;
        total_ops += count;
        let (p50_us, p99_us, p999_us) = latency_summary(&mut lats);
        classes.push(ClassStats {
            class,
            count,
            errors,
            p50_us,
            p99_us,
            p999_us,
        });
    }

    let stats = y.db().stats();
    let counters = REPORT_COUNTERS
        .iter()
        .map(|&name| (name.to_string(), stats.counter(name).get()))
        .collect();
    let histograms = stats
        .histogram_snapshot()
        .into_iter()
        .filter(|(_, s)| s.count > 0)
        .map(|(name, summary)| {
            let buckets = stats.histogram(&name).nonzero_buckets();
            (name, summary, buckets)
        })
        .collect();

    let elapsed_s = elapsed.as_secs_f64();
    LoadResult {
        workload: spec.workload.clone(),
        threads: spec.threads,
        servers: spec.servers,
        wal: spec.wal_label(),
        key_pool: spec.key_pool,
        batched: spec.rpc_batch.is_some(),
        elapsed_s,
        ops: total_ops,
        ops_per_sec: total_ops as f64 / elapsed_s.max(1e-9),
        classes,
        counters,
        histograms,
    }
}

/// What one client thread brings home.
struct ThreadRecord {
    latencies_us: [Vec<u64>; 5],
    errors: [u64; 5],
}

fn run_thread(
    y: &Yesquel,
    spec: &LoadSpec,
    pools: &[Vec<ObjectId>],
    insert_next: &AtomicU64,
    deadline: Instant,
    thread_id: u64,
) -> ThreadRecord {
    let session = y.new_session().expect("load thread session");
    let client = y.db().client();
    let sel = session
        .prepare("SELECT id, grp, val FROM load WHERE id = ?")
        .expect("prepare select");
    let scan = session
        .prepare("SELECT id, val FROM load WHERE id >= ? AND id < ? ORDER BY id LIMIT 16")
        .expect("prepare scan");
    let ins = session
        .prepare("INSERT INTO load (id, grp, val) VALUES (?, ?, ?)")
        .expect("prepare insert");

    let mut rng = StdRng::seed_from_u64(spec.seed ^ (thread_id.wrapping_mul(0x9e37_79b9)));
    let weight_total: u32 = spec.mix.iter().map(|&(_, w)| w).sum();
    assert!(weight_total > 0, "load mix has no weight");

    let mut rec = ThreadRecord {
        latencies_us: Default::default(),
        errors: [0; 5],
    };
    let mut payload_counter = 0u64;
    let select_range = spec.hot_select_range.unwrap_or(SQL_ROWS).clamp(1, SQL_ROWS);

    while Instant::now() < deadline {
        // Weighted class pick.
        let mut roll = rng.gen_range(0..weight_total);
        let class = spec
            .mix
            .iter()
            .find(|&&(_, w)| {
                if roll < w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .map(|&(c, _)| c)
            .expect("weighted pick within total");

        let start = Instant::now();
        let outcome: Result<(), yesquel_common::Error> = match class {
            OpClass::Select => {
                let id = rng.gen_range(0..select_range);
                sel.execute(params![id]).map(|_| ())
            }
            OpClass::Scan => {
                let lo = rng.gen_range(0..SQL_ROWS.max(33) - 32);
                scan.execute(params![lo, lo + 32]).map(|_| ())
            }
            OpClass::Insert => {
                let seq = insert_next.fetch_add(1, Ordering::Relaxed);
                // Bit-reversal is a bijection, so scattered ids stay
                // unique; keeping 40 bits keeps them positive i64s far
                // above the preloaded 0..SQL_ROWS range.
                let id = if spec.scatter_inserts {
                    (seq.reverse_bits() >> 24) as i64
                } else {
                    seq as i64
                };
                ins.execute(params![id, id % 16, 1]).map(|_| ())
            }
            OpClass::Kv1pc => {
                // One server, two objects: still a single-server txn, so
                // the coordinator uses one-phase commit.
                let server = rng.gen_range(0..spec.servers);
                let pool = &pools[server];
                let a = pool[rng.gen_range(0..pool.len())];
                let b = pool[rng.gen_range(0..pool.len())];
                payload_counter += 1;
                let payload = payload_counter.to_le_bytes().to_vec();
                client
                    .run_txn(|txn| {
                        txn.put(a, payload.clone())?;
                        if b != a {
                            txn.put(b, payload.clone())?;
                        }
                        Ok(())
                    })
                    .map(|_| ())
            }
            OpClass::Kv2pc => {
                // Two distinct servers (degrades to 1PC on a one-server
                // deployment, where 2PC cannot exist).
                let s1 = rng.gen_range(0..spec.servers);
                let s2 = if spec.servers > 1 {
                    (s1 + 1 + rng.gen_range(0..spec.servers - 1)) % spec.servers
                } else {
                    s1
                };
                let a = pools[s1][rng.gen_range(0..pools[s1].len())];
                let b = pools[s2][rng.gen_range(0..pools[s2].len())];
                payload_counter += 1;
                let payload = payload_counter.to_le_bytes().to_vec();
                client
                    .run_txn(|txn| {
                        txn.put(a, payload.clone())?;
                        if b != a {
                            txn.put(b, payload.clone())?;
                        }
                        Ok(())
                    })
                    .map(|_| ())
            }
        };
        let i = class.index();
        match outcome {
            Ok(()) => rec.latencies_us[i].push(start.elapsed().as_micros() as u64),
            Err(_) => rec.errors[i] += 1,
        }
    }
    rec
}

/// Renders one result as a single JSON object line (hand-rolled; the
/// offline build has no serde).
pub fn render_result(r: &LoadResult) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"workload\": \"{}\", \"threads\": {}, \"servers\": {}, \"wal\": \"{}\", \
         \"key_pool\": {}, \"batched\": {}, \"elapsed_s\": {:.3}, \"ops\": {}, \
         \"ops_per_sec\": {:.1}, \"classes\": [",
        r.workload,
        r.threads,
        r.servers,
        r.wal,
        r.key_pool,
        r.batched,
        r.elapsed_s,
        r.ops,
        r.ops_per_sec
    );
    for (i, c) in r.classes.iter().enumerate() {
        let comma = if i + 1 == r.classes.len() { "" } else { ", " };
        let _ = write!(
            out,
            "{{\"class\": \"{}\", \"count\": {}, \"errors\": {}, \"p50_us\": {}, \
             \"p99_us\": {}, \"p999_us\": {}}}{comma}",
            c.class.name(),
            c.count,
            c.errors,
            c.p50_us,
            c.p99_us,
            c.p999_us
        );
    }
    let _ = write!(out, "], \"counters\": {{");
    for (i, (name, v)) in r.counters.iter().enumerate() {
        let comma = if i + 1 == r.counters.len() { "" } else { ", " };
        let _ = write!(out, "\"{name}\": {v}{comma}");
    }
    let _ = write!(out, "}}, \"histograms\": {{");
    for (i, (name, s, buckets)) in r.histograms.iter().enumerate() {
        let comma = if i + 1 == r.histograms.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(
            out,
            "\"{name}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \
             \"p99\": {}, \"p999\": {}, \"max\": {}, \"buckets\": [",
            s.count, s.mean, s.p50, s.p90, s.p99, s.p999, s.max
        );
        for (j, (lo, hi, c)) in buckets.iter().enumerate() {
            let bcomma = if j + 1 == buckets.len() { "" } else { ", " };
            let _ = write!(out, "[{lo}, {hi}, {c}]{bcomma}");
        }
        let _ = write!(out, "]}}{comma}");
    }
    let _ = write!(out, "}}}}");
    out
}

/// Renders a full sweep as the stable `BENCH_*_LOAD.json` layout: a
/// header, then one result object per line under `"runs"`.
pub fn render_load_report(label: &str, description: &str, results: &[LoadResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"description\": \"{description}\",");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(out, "    {}{comma}", render_result(r));
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_known_uniform_distribution() {
        // 1..=100: nearest-rank pX is exactly X, and p99.9 rounds up to
        // the maximum.
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 0.999), 100);
        assert_eq!(percentile(&sorted, 1.0), 100);
    }

    #[test]
    fn percentile_tiny_samples() {
        // A single sample is every percentile.
        assert_eq!(percentile(&[42], 0.50), 42);
        assert_eq!(percentile(&[42], 0.999), 42);
        // Two samples: rank ceil(0.5 * 2) = 1 -> the first covers p50.
        assert_eq!(percentile(&[10, 20], 0.50), 10);
        assert_eq!(percentile(&[10, 20], 0.99), 20);
        // Four samples: p50 is the second, p99/p999 the last.
        assert_eq!(percentile(&[1, 2, 3, 4], 0.50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.99), 4);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.999), 4);
    }

    #[test]
    fn percentile_skewed_distribution() {
        // 990 fast samples and 10 slow ones: p50/p99 sit in the fast
        // cluster, p999 lands in the tail.
        let mut samples: Vec<u64> = vec![100; 990];
        samples.extend(std::iter::repeat_n(10_000, 10));
        samples.sort_unstable();
        assert_eq!(percentile(&samples, 0.50), 100);
        assert_eq!(percentile(&samples, 0.99), 100);
        assert_eq!(percentile(&samples, 0.999), 10_000);
    }

    #[test]
    fn latency_summary_sorts_and_handles_empty() {
        assert_eq!(latency_summary(&mut Vec::new()), (0, 0, 0));
        let mut unsorted = vec![30, 10, 20];
        assert_eq!(latency_summary(&mut unsorted), (20, 30, 30));
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_rejects_empty() {
        percentile(&[], 0.5);
    }

    #[test]
    fn percentile_matches_histogram_quantile_within_relative_error() {
        // Satellite cross-check: the harness's exact nearest-rank
        // percentiles and the log-bucketed histogram's quantiles must agree
        // within the histogram's documented relative-error bound on the
        // same sample set. Mix a fast cluster, a mid band and a heavy tail
        // so every quantile of interest lands in a different bucket regime.
        use yesquel_common::obs::hist::{Histogram, MAX_RELATIVE_ERROR};
        let mut samples: Vec<u64> = Vec::new();
        samples.extend((0..600).map(|i| 80 + i % 40)); // fast cluster
        samples.extend((0..350).map(|i| 1_500 + i * 7)); // mid band
        samples.extend((0..50).map(|i| 90_000 + i * 1_000)); // heavy tail
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        for q in [0.50, 0.90, 0.99, 0.999] {
            let exact = percentile(&samples, q) as f64;
            let bucketed = hist.quantile(q) as f64;
            // The histogram reports the midpoint of the containing bucket,
            // so it can land on either side of the exact value but never
            // further than half the bucket's width.
            let rel = (bucketed - exact).abs() / exact;
            assert!(
                rel <= MAX_RELATIVE_ERROR,
                "q{q}: bucketed {bucketed} vs exact {exact}: rel err {rel} > {MAX_RELATIVE_ERROR}"
            );
        }
    }

    #[test]
    fn render_result_is_balanced_json() {
        let r = LoadResult {
            workload: "t".into(),
            threads: 2,
            servers: 2,
            wal: "group100".into(),
            key_pool: 64,
            batched: true,
            elapsed_s: 0.5,
            ops: 10,
            ops_per_sec: 20.0,
            classes: vec![ClassStats {
                class: OpClass::Kv2pc,
                count: 10,
                errors: 0,
                p50_us: 5,
                p99_us: 9,
                p999_us: 9,
            }],
            counters: vec![("wal.fsyncs".into(), 3)],
            histograms: vec![(
                "kv.commit.prepare_us".into(),
                HistogramSummary {
                    count: 4,
                    mean: 7.5,
                    p50: 7,
                    p90: 9,
                    p99: 9,
                    p999: 9,
                    max: 9,
                },
                vec![(7, 7, 2), (8, 9, 2)],
            )],
        };
        let s = render_result(&r);
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(s.contains("\"kv_2pc\""));
        assert!(s.contains("\"wal.fsyncs\": 3"));
        assert!(s.contains("\"kv.commit.prepare_us\""));
        assert!(s.contains("[7, 7, 2]"));
        let report = render_load_report("BENCH_TEST_LOAD", "unit test", &[r]);
        assert_eq!(report.matches('{').count(), report.matches('}').count());
        assert!(!report.contains("},\n  ]"), "no trailing comma: {report}");
    }

    #[test]
    fn tiny_load_run_completes_and_counts_ops() {
        // A sub-100ms smoke of the whole closed loop: every op class, two
        // threads, two servers, WAL in group mode, batching on, parallel
        // fan-out forced so the path is exercised even on the direct
        // transport.
        let mut spec = LoadSpec::new("unit", 2, 2, Duration::from_millis(60));
        spec.key_pool = 64;
        spec.wal = Some(WalFsyncPolicy::Group { window_us: 50 });
        spec.rpc_batch = Some(RpcBatchConfig {
            window_us: 20,
            max_batch: 8,
            linger_us: 0,
        });
        spec.commit_fanout = CommitFanout::Parallel;
        let r = run_load(&spec);
        assert!(r.ops > 0, "closed loop made no progress: {r:?}");
        assert_eq!(r.classes.len(), 5, "all mixed classes present");
        let fanouts = r
            .counters
            .iter()
            .find(|(n, _)| n == "kv.prepare_parallel_fanouts")
            .map(|&(_, v)| v)
            .unwrap();
        let batched = r
            .counters
            .iter()
            .find(|(n, _)| n == "rpc.batched_requests")
            .map(|&(_, v)| v)
            .unwrap();
        // 2PC ops ran on two servers with Parallel fan-out, so the
        // counter must move; batching is best-effort (two threads may
        // never collide in a 20us window), so only sanity-check presence.
        assert!(fanouts > 0, "parallel prepare fan-out never engaged");
        let _ = batched;
    }

    #[test]
    fn tiny_replicated_load_run_promotes_hot_leaf() {
        // Read-heavy closed loop over a deliberate hot range with the
        // replication machinery on: the hot leaf must get promoted and the
        // run must finish with consistent answers (errors == 0 for selects).
        let mut spec = LoadSpec::new("unit_replication", 2, 2, Duration::from_millis(150));
        spec.mix = read_heavy_mix();
        spec.hot_select_range = Some(8);
        spec.dbt = Some(DbtConfig {
            split_mode: SplitMode::Delegated,
            load_splits: true,
            load_split_threshold: 40,
            replica_factor: 1,
            ..DbtConfig::default()
        });
        let r = run_load(&spec);
        assert!(r.ops > 0, "closed loop made no progress: {r:?}");
        let counter = |n: &str| {
            r.counters
                .iter()
                .find(|(name, _)| name == n)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(
            counter("dbt.replica_promotions") >= 1,
            "hot leaf was never promoted: {r:?}"
        );
        let selects = r
            .classes
            .iter()
            .find(|c| c.class == OpClass::Select)
            .unwrap();
        assert_eq!(selects.errors, 0, "replicated reads must not fail: {r:?}");
    }
}
