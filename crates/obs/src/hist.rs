//! Log-bucketed atomic-array histograms with bounded relative error.
//!
//! Values below [`LINEAR_LIMIT`] (64) are bucketed **exactly** — one bucket
//! per integer — which covers the small-count distributions (descent
//! fetches, commit-group sizes, batch occupancy) with zero error.  Larger
//! values are bucketed by `floor(log2 v)` with 32 sub-buckets per power of
//! two; a quantile read back as a bucket midpoint is within 1/64 ≈ 1.6% of
//! the true value.  `record` is lock-free (four relaxed atomic adds), and
//! p50/p99/p999 are computed exactly *from the buckets* — there is no
//! sampling and no decay.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two.
const SUB_BITS: usize = 5;
const SUB: usize = 1 << SUB_BITS;

/// Values below this are bucketed exactly (one bucket per integer).
pub const LINEAR_LIMIT: u64 = (2 * SUB) as u64;

/// Total bucket count: the exact linear range plus 32 sub-buckets for each
/// octave 6..=63.  Covers all of `u64`.
pub const NUM_BUCKETS: usize = 2 * SUB + (63 - SUB_BITS) * SUB;

/// Worst-case relative error of a quantile estimate for values ≥ 64
/// (midpoint of a bucket whose width is 1/32 of its lower bound).
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 64.0;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // 6..=63
    let sub = ((v >> (octave - SUB_BITS)) as usize) - SUB;
    2 * SUB + (octave - 1 - SUB_BITS) * SUB + sub
}

/// Smallest value mapping to bucket `idx`.
#[inline]
fn bucket_low(idx: usize) -> u64 {
    if idx < 2 * SUB {
        return idx as u64;
    }
    let octave = (idx - 2 * SUB) / SUB + SUB_BITS + 1;
    let sub = (idx - 2 * SUB) % SUB;
    ((SUB + sub) as u64) << (octave - SUB_BITS)
}

/// Number of distinct values mapping to bucket `idx`.
#[inline]
fn bucket_width(idx: usize) -> u64 {
    if idx < 2 * SUB {
        return 1;
    }
    let octave = (idx - 2 * SUB) / SUB + SUB_BITS + 1;
    1u64 << (octave - SUB_BITS)
}

/// Representative value reported for bucket `idx`: its midpoint, which
/// bounds the relative error at [`MAX_RELATIVE_ERROR`].
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    bucket_low(idx) + (bucket_width(idx) - 1) / 2
}

/// A lock-free log-bucketed histogram for latency-like values
/// (non-negative integers, typically microseconds or small counts).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let buckets: Box<[AtomicU64]> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (lock-free, relaxed atomics only).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of the observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]`, computed from the buckets
    /// (nearest-rank over bucket midpoints).  Exact for values < 64, within
    /// [`MAX_RELATIVE_ERROR`] above.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_mid(i).min(self.max());
            }
        }
        self.max()
    }

    /// Folds the other histogram's observations into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Resets every bucket and tally to zero.  Concurrent `record`s may
    /// land on either side of the wipe; the histogram stays internally
    /// consistent for reporting purposes.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the usual reporting quantiles.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            max: self.max(),
        }
    }

    /// The non-empty buckets as `(low, high, count)` triples, where
    /// `low..=high` is the value range of the bucket.  This is the export
    /// format for JSON dumps: a consumer can recompute any quantile.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let low = bucket_low(i);
                out.push((low, low + (bucket_width(i) - 1), n));
            }
        }
        out
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        write!(f, "Histogram({s:?})")
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean value (exact: tracked as a running sum).
    pub mean: f64,
    /// Median, within [`MAX_RELATIVE_ERROR`].
    pub p50: u64,
    /// 90th percentile, within [`MAX_RELATIVE_ERROR`].
    pub p90: u64,
    /// 99th percentile, within [`MAX_RELATIVE_ERROR`].
    pub p99: u64,
    /// 99.9th percentile, within [`MAX_RELATIVE_ERROR`].
    pub p999: u64,
    /// Maximum (exact).
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_is_consistent() {
        // Every representative value must map back into its own bucket, and
        // bucket boundaries must tile the u64 range without gaps.
        for idx in 0..NUM_BUCKETS {
            let low = bucket_low(idx);
            assert_eq!(bucket_index(low), idx, "low of bucket {idx}");
            let high = low + (bucket_width(idx) - 1);
            assert_eq!(bucket_index(high), idx, "high of bucket {idx}");
            assert_eq!(bucket_index(bucket_mid(idx)), idx, "mid of bucket {idx}");
            if idx + 1 < NUM_BUCKETS {
                assert_eq!(bucket_low(idx + 1), high + 1, "no gap after bucket {idx}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record(v);
        }
        for v in 0..LINEAR_LIMIT {
            let q = (v + 1) as f64 / LINEAR_LIMIT as f64;
            assert_eq!(h.quantile(q), v, "quantile {q} must be exact");
        }
    }

    #[test]
    fn quantiles_within_bounded_relative_error() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.50, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(
                rel <= MAX_RELATIVE_ERROR,
                "q={q}: got {got}, want {truth} ± {:.2}%",
                MAX_RELATIVE_ERROR * 100.0
            );
        }
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn summary_is_monotone() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            for _ in 0..100 {
                h.record(v);
            }
        }
        let s = h.summary();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max);
        assert_eq!(s.count, 700);
    }

    #[test]
    fn merge_combines_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=1000u64 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        assert_eq!(a.max(), 2000);
        let p50 = a.quantile(0.5) as f64;
        assert!(
            (p50 - 1000.0).abs() / 1000.0 <= MAX_RELATIVE_ERROR,
            "p50={p50}"
        );
    }

    #[test]
    fn reset_wipes() {
        let h = Histogram::new();
        h.record(5);
        h.record(50_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn nonzero_buckets_cover_all_observations() {
        let h = Histogram::new();
        for v in [0u64, 3, 63, 64, 65, 4096, 123_456_789] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        let total: u64 = buckets.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, 7);
        for &(low, high, _) in &buckets {
            assert!(low <= high);
        }
        // 64 and 65 share the first width-2 bucket past the exact range.
        assert!(buckets
            .iter()
            .any(|&(lo, hi, n)| lo == 64 && hi == 65 && n == 2));
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p999, s.max), (0, 0, 0, 0));
    }
}
