//! Observability substrate shared by every layer of the system.
//!
//! Three pieces, all built around the same pay-as-you-go discipline (one
//! relaxed atomic branch on a hot path when the feature is off):
//!
//! * [`hist::Histogram`] — a log-bucketed atomic-array latency histogram
//!   with **bounded relative error**: values below 64 are bucketed exactly,
//!   larger values land in one of 32 sub-buckets per power of two, so a
//!   quantile read back from the buckets is within ~1.6% of the true value.
//!   `record` is lock-free (a handful of relaxed atomic adds), histograms
//!   [`merge`](hist::Histogram::merge) and [`reset`](hist::Histogram::reset),
//!   and p50/p99/p999/max are computed exactly from the buckets — no
//!   sampling, no reservoir.  `yesquel_common::stats::StatsRegistry`
//!   registers these by name next to its counters.
//!
//! * [`trace`] — op-scoped trace spans.  A [`trace::Trace`] is installed in
//!   thread-local storage at the top of an operation (a SQL statement, a KV
//!   transaction); instrumented code underneath charges wall-clock time to a
//!   [`trace::SpanKind`] (sql → ydbt → kvstore → rpc → wal) and bumps
//!   [`trace::TraceCounter`]s (node fetches, fetch-backs, retries,
//!   conflicts, replica reads) without any plumbing through function
//!   signatures.  When **no** trace is active anywhere in the process, every
//!   instrumentation point is a single relaxed atomic load.  Completed
//!   traces slower than a threshold land in a bounded [`trace::SlowOpRing`]
//!   dumpable as JSON.
//!
//! * [`clock`] — the only way obs code reads the clock.  Every
//!   `clock::now()` bumps a thread-local counter, and every allocation the
//!   tracing layer performs is tallied through `clock::note_alloc`, so a
//!   test can *assert* that the untraced fast path performs zero clock
//!   reads and zero observability allocations per operation (sampling off
//!   means truly off).
//!
//! The [`Obs`] control block bundles the knobs: a `timing` flag gating all
//! latency-histogram clock reads, a 1-in-N trace sampler, the slow-op
//! threshold and the ring itself.  One `Obs` hangs off each
//! `StatsRegistry`, so any component holding the registry (all of them)
//! can reach the knobs without new plumbing.
//!
//! This crate is a leaf: std only, no dependencies, usable from `common`
//! downwards.

pub mod clock;
pub mod hist;
pub mod trace;

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use trace::{SlowOpRing, Trace};

/// Default capacity of the slow-op ring buffer.
pub const SLOW_RING_CAP: usize = 128;

/// Default slow-op threshold: completed traces at least this slow are kept.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 1_000;

/// Runtime observability knobs, shared by reference from a stats registry.
///
/// Everything defaults to **off**: `timing_on` is false (no histogram clock
/// reads), `sample_every` is 0 (no sampled traces).  The load harness and
/// the metrics-dump example flip them on for their cells.
pub struct Obs {
    /// Gates every latency-histogram clock read in instrumented code.
    timing: AtomicBool,
    /// Sample 1 in N operations into a trace; 0 disables sampling.
    sample_every: AtomicU32,
    /// Monotone sequence for the 1-in-N sampler.
    sample_seq: AtomicU32,
    /// Completed traces at least this slow (µs) land in the ring.
    slow_threshold_us: AtomicU64,
    ring: Arc<SlowOpRing>,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// Creates a control block with everything off and an empty ring.
    pub fn new() -> Self {
        Obs {
            timing: AtomicBool::new(false),
            sample_every: AtomicU32::new(0),
            sample_seq: AtomicU32::new(0),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            ring: Arc::new(SlowOpRing::new(SLOW_RING_CAP)),
        }
    }

    /// Whether latency histograms should be recorded (one relaxed load).
    #[inline]
    pub fn timing_on(&self) -> bool {
        self.timing.load(Ordering::Relaxed)
    }

    /// Turns latency-histogram recording on or off.
    pub fn set_timing(&self, on: bool) {
        self.timing.store(on, Ordering::Relaxed);
    }

    /// Sets the trace sampling rate to 1-in-`n`; 0 disables sampling.
    pub fn set_sample_every(&self, n: u32) {
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// Current sampling rate (0 = off).
    pub fn sample_every(&self) -> u32 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Sets the slow-op threshold in microseconds.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// Current slow-op threshold in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// The ring of recently completed slow operations.
    pub fn slow_ring(&self) -> &Arc<SlowOpRing> {
        &self.ring
    }

    /// Sampled trace creation for an operation entry point.  Costs one
    /// relaxed load when sampling is off; `label` is only invoked (and only
    /// allocates) for the 1-in-N operations actually sampled.  Returns
    /// `None` when this operation is not sampled or the thread already has
    /// an active trace (traces do not nest).
    #[inline]
    pub fn maybe_trace(&self, label: impl FnOnce() -> String) -> Option<Trace> {
        let n = self.sample_every.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        let seq = self.sample_seq.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(n) {
            return None;
        }
        Trace::start(
            label(),
            self.slow_threshold_us.load(Ordering::Relaxed),
            Arc::clone(&self.ring),
        )
    }

    /// Per-call opt-in trace (e.g. `EXPLAIN ANALYZE`): always traces,
    /// regardless of the sampling rate.  Returns `None` only if the thread
    /// already has an active trace.
    pub fn force_trace(&self, label: String) -> Option<Trace> {
        Trace::start(
            label,
            self.slow_threshold_us.load(Ordering::Relaxed),
            Arc::clone(&self.ring),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        let o = Obs::new();
        assert!(!o.timing_on());
        assert_eq!(o.sample_every(), 0);
        assert!(o
            .maybe_trace(|| unreachable!("label must not build"))
            .is_none());
    }

    #[test]
    fn sampler_hits_one_in_n() {
        let o = Obs::new();
        o.set_sample_every(4);
        let mut hits = 0;
        for _ in 0..16 {
            if let Some(t) = o.maybe_trace(|| "op".to_string()) {
                hits += 1;
                drop(t);
            }
        }
        assert_eq!(hits, 4);
    }

    #[test]
    fn force_trace_ignores_sampling() {
        let o = Obs::new();
        assert_eq!(o.sample_every(), 0);
        let t = o.force_trace("explain".to_string());
        assert!(t.is_some());
    }
}
