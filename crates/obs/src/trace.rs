//! Op-scoped trace spans and the slow-op ring buffer.
//!
//! A [`Trace`] is created at an operation's entry point (a SQL statement in
//! `Session`, an `EXPLAIN ANALYZE`) and installed in thread-local storage.
//! Instrumented code *anywhere underneath* — the DBT descent, the 2PC
//! coordinator, the transports, the write-ahead log — charges wall-clock
//! time to a [`SpanKind`] via [`span`] and bumps [`TraceCounter`]s via
//! [`count`], with no trace handle threaded through any signature.
//!
//! The pay-as-you-go contract: a process-wide relaxed atomic counts the
//! active traces.  While it is zero — the overwhelmingly common case —
//! every [`span`] and [`count`] call is **one relaxed atomic load and a
//! branch**; no clock read, no TLS access, no allocation.  Only when some
//! thread is tracing do other instrumentation points additionally consult
//! their (cheap, but not free) thread-local slot.
//!
//! A trace that finishes slower than its threshold is pushed — as a
//! [`TraceReport`] — into the bounded [`SlowOpRing`] it was created with,
//! where it can be dumped as JSON for postmortems and CI smoke checks.
//!
//! Known limit: spans are attributed to the thread they run on.  Work the
//! 2PC coordinator hands to fan-out pool workers is not charged to the
//! calling trace (the counters it bumps on its own thread still are).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::clock;

/// Layers a span charges wall-clock time to, ordered top to bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// SQL statement execution (the executor, excluding parse/plan).
    Sql = 0,
    /// A distributed-balanced-tree operation (lookup/insert/delete/scan).
    Dbt = 1,
    /// A KV read RPC round (get / scan-next leg).
    KvGet = 2,
    /// A KV transaction commit (1PC or the whole 2PC).
    KvCommit = 3,
    /// One RPC round trip, including retries and backoff.
    Rpc = 4,
    /// A write-ahead-log append, including its share of the group fsync.
    Wal = 5,
}

/// Number of span kinds (array size for per-trace accumulators).
pub const NUM_SPAN_KINDS: usize = 6;

const SPAN_NAMES: [&str; NUM_SPAN_KINDS] = ["sql", "dbt", "kv_get", "kv_commit", "rpc", "wal"];

impl SpanKind {
    /// Stable lower-case name used in reports.
    pub fn name(self) -> &'static str {
        SPAN_NAMES[self as usize]
    }
}

/// Per-trace event counters bumped by instrumented code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum TraceCounter {
    /// DBT node fetches (inner or leaf) issued to the KV store.
    NodeFetches = 0,
    /// Rows re-fetched from the base table after an index hit (fetch-backs).
    FetchBacks = 1,
    /// Rows pulled out of the tree by scans/lookups.
    RowsScanned = 2,
    /// RPC retry attempts (after the first try).
    Retries = 3,
    /// Write-write conflicts observed at commit.
    Conflicts = 4,
    /// Node reads served by a hot-node replica instead of the primary.
    ReplicaReads = 5,
    /// RPC round trips issued.
    Rpcs = 6,
}

/// Number of trace counters (array size for per-trace accumulators).
pub const NUM_TRACE_COUNTERS: usize = 7;

const COUNTER_NAMES: [&str; NUM_TRACE_COUNTERS] = [
    "node_fetches",
    "fetchbacks",
    "rows_scanned",
    "retries",
    "conflicts",
    "replica_reads",
    "rpcs",
];

impl TraceCounter {
    /// Stable lower-case name used in reports.
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }
}

/// The per-thread accumulator behind an active [`Trace`].
struct ActiveTrace {
    label: String,
    start: Instant,
    span_calls: [u64; NUM_SPAN_KINDS],
    span_us: [u64; NUM_SPAN_KINDS],
    counters: [u64; NUM_TRACE_COUNTERS],
    slow_threshold_us: u64,
    ring: Arc<SlowOpRing>,
}

thread_local! {
    static CURRENT: RefCell<Option<Box<ActiveTrace>>> = const { RefCell::new(None) };
}

/// Process-wide count of active traces: the one relaxed load every
/// instrumentation point pays when tracing is off anywhere.
static ACTIVE_TRACES: AtomicU64 = AtomicU64::new(0);

/// Whether any thread in the process currently holds an active trace.
#[inline]
pub fn tracing_active() -> bool {
    ACTIVE_TRACES.load(Ordering::Relaxed) != 0
}

/// Bumps trace counter `c` by `n` on the current trace, if any.  One
/// relaxed load when no trace is active anywhere in the process.
#[inline]
pub fn count(c: TraceCounter, n: u64) {
    if !tracing_active() {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(t) = cur.borrow_mut().as_mut() {
            t.counters[c as usize] += n;
        }
    });
}

/// Reads the current trace's value of counter `c` (0 without a trace).
/// `EXPLAIN ANALYZE` uses before/after deltas of this to attribute fetches
/// to individual plan operators.
#[inline]
pub fn counter_value(c: TraceCounter) -> u64 {
    if !tracing_active() {
        return 0;
    }
    CURRENT.with(|cur| cur.borrow().as_ref().map_or(0, |t| t.counters[c as usize]))
}

/// An RAII guard charging its lifetime to a [`SpanKind`] of the current
/// trace.  Inert (no clock read) when the thread has no active trace.
pub struct Span {
    kind: SpanKind,
    start: Option<Instant>,
}

/// Opens a span of `kind` against the current trace.  One relaxed load when
/// no trace is active anywhere in the process.
#[inline]
pub fn span(kind: SpanKind) -> Span {
    if !tracing_active() {
        return Span { kind, start: None };
    }
    let traced = CURRENT.with(|cur| cur.borrow().is_some());
    Span {
        kind,
        start: traced.then(clock::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let us = clock::elapsed_us(t0);
            CURRENT.with(|cur| {
                if let Some(t) = cur.borrow_mut().as_mut() {
                    t.span_calls[self.kind as usize] += 1;
                    t.span_us[self.kind as usize] += us;
                }
            });
        }
    }
}

/// A handle to this thread's active trace; dropping it finishes the trace
/// and, if it was slow enough, files it in the slow-op ring.
pub struct Trace {
    /// Guards against a mismatched drop after `finish` already ran.
    finished: bool,
}

impl Trace {
    /// Starts a trace on this thread.  Returns `None` if the thread already
    /// has one (traces do not nest).  Allocation note: the label string,
    /// the boxed accumulator and the ring `Arc` bump the tracked-alloc
    /// tally — this is exactly the cost sampling is meant to amortise.
    pub fn start(label: String, slow_threshold_us: u64, ring: Arc<SlowOpRing>) -> Option<Trace> {
        let installed = CURRENT.with(|cur| {
            let mut cur = cur.borrow_mut();
            if cur.is_some() {
                return false;
            }
            clock::note_alloc(2); // the Box below plus the caller's label
            *cur = Some(Box::new(ActiveTrace {
                label,
                start: clock::now(),
                span_calls: [0; NUM_SPAN_KINDS],
                span_us: [0; NUM_SPAN_KINDS],
                counters: [0; NUM_TRACE_COUNTERS],
                slow_threshold_us,
                ring,
            }));
            true
        });
        if !installed {
            return None;
        }
        ACTIVE_TRACES.fetch_add(1, Ordering::Relaxed);
        Some(Trace { finished: false })
    }

    /// Finishes the trace and returns its report (also files it in the ring
    /// if it crossed the slow threshold).
    pub fn finish(mut self) -> TraceReport {
        self.finished = true;
        finish_current().expect("trace handle without an active trace")
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if !self.finished {
            let _ = finish_current();
        }
    }
}

fn finish_current() -> Option<TraceReport> {
    let active = CURRENT.with(|cur| cur.borrow_mut().take())?;
    ACTIVE_TRACES.fetch_sub(1, Ordering::Relaxed);
    let elapsed_us = clock::elapsed_us(active.start);
    let mut spans = Vec::new();
    for (i, &name) in SPAN_NAMES.iter().enumerate() {
        if active.span_calls[i] > 0 {
            spans.push(SpanTotal {
                name,
                calls: active.span_calls[i],
                us: active.span_us[i],
            });
        }
    }
    let mut counters = Vec::new();
    for (i, &name) in COUNTER_NAMES.iter().enumerate() {
        if active.counters[i] > 0 {
            counters.push((name, active.counters[i]));
        }
    }
    clock::note_alloc(3); // report label + span and counter vectors
    let report = TraceReport {
        label: active.label,
        elapsed_us,
        spans,
        counters,
    };
    if elapsed_us >= active.slow_threshold_us {
        active.ring.push(report.clone());
    }
    Some(report)
}

/// Accumulated time one trace spent in one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotal {
    /// Layer name ([`SpanKind::name`]).
    pub name: &'static str,
    /// Number of spans of this kind.
    pub calls: u64,
    /// Total microseconds across those spans (inclusive of nested layers).
    pub us: u64,
}

/// A completed trace: total elapsed time, per-layer span totals and the
/// non-zero per-trace counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// The label the trace was created with (e.g. `sql:select`).
    pub label: String,
    /// Wall-clock microseconds from trace start to finish.
    pub elapsed_us: u64,
    /// Per-layer time, only kinds with at least one span.
    pub spans: Vec<SpanTotal>,
    /// Non-zero per-trace counters.
    pub counters: Vec<(&'static str, u64)>,
}

impl TraceReport {
    /// Value of a span total by name, if any span of that kind ran.
    pub fn span_us(&self, name: &str) -> Option<u64> {
        self.spans.iter().find(|s| s.name == name).map(|s| s.us)
    }

    /// Value of a trace counter by name (0 if it never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"label\": \"{}\", \"elapsed_us\": {}, \"spans\": {{",
            json_escape(&self.label),
            self.elapsed_us
        );
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 == self.spans.len() { "" } else { ", " };
            let _ = write!(
                out,
                "\"{}\": {{\"calls\": {}, \"us\": {}}}{comma}",
                s.name, s.calls, s.us
            );
        }
        let _ = write!(out, "}}, \"counters\": {{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 == self.counters.len() {
                ""
            } else {
                ", "
            };
            let _ = write!(out, "\"{name}\": {v}{comma}");
        }
        let _ = write!(out, "}}}}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal (labels are ASCII
/// identifiers in practice; this covers the general case anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A bounded ring of the most recent slow operations.  Pushes evict the
/// oldest entry once the ring is full; the eviction tally is kept so a
/// dump discloses what it dropped.
pub struct SlowOpRing {
    cap: usize,
    entries: Mutex<VecDeque<TraceReport>>,
    evicted: AtomicU64,
}

impl SlowOpRing {
    /// Creates a ring holding at most `cap` reports.
    pub fn new(cap: usize) -> Self {
        SlowOpRing {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
        }
    }

    /// Files a report, evicting the oldest if the ring is full.
    pub fn push(&self, report: TraceReport) {
        clock::note_alloc(1);
        let mut g = self.entries.lock().expect("slow-op ring poisoned");
        if g.len() == self.cap {
            g.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        g.push_back(report);
    }

    /// Number of reports currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow-op ring poisoned").len()
    }

    /// True when no slow op has been filed (or all were cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reports evicted to make room since creation (or the last clear).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Drops every held report and zeroes the eviction tally.
    pub fn clear(&self) {
        self.entries.lock().expect("slow-op ring poisoned").clear();
        self.evicted.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the held reports, oldest first.
    pub fn snapshot(&self) -> Vec<TraceReport> {
        self.entries
            .lock()
            .expect("slow-op ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the ring as one JSON object (`{"evicted": n, "slow_ops":
    /// [...]}`), oldest first.
    pub fn dump_json(&self) -> String {
        use std::fmt::Write as _;
        let reports = self.snapshot();
        let mut out = String::new();
        let _ = write!(out, "{{\"evicted\": {}, \"slow_ops\": [", self.evicted());
        for (i, r) in reports.iter().enumerate() {
            let comma = if i + 1 == reports.len() { "" } else { ", " };
            let _ = write!(out, "{}{comma}", r.to_json());
        }
        let _ = write!(out, "]}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Arc<SlowOpRing> {
        Arc::new(SlowOpRing::new(4))
    }

    #[test]
    fn spans_and_counters_accumulate() {
        let t = Trace::start("op".into(), u64::MAX, ring()).unwrap();
        {
            let _s = span(SpanKind::Dbt);
            count(TraceCounter::NodeFetches, 2);
            let _inner = span(SpanKind::Rpc);
            count(TraceCounter::Rpcs, 1);
        }
        let report = t.finish();
        assert_eq!(report.label, "op");
        assert_eq!(report.counter("node_fetches"), 2);
        assert_eq!(report.counter("rpcs"), 1);
        assert_eq!(report.counter("conflicts"), 0);
        assert!(report.span_us("dbt").is_some());
        assert!(report.span_us("rpc").is_some());
        assert!(report.span_us("wal").is_none());
    }

    #[test]
    fn inert_when_no_trace_on_this_thread() {
        // (tracing_active() is process-global and other tests may trace
        // concurrently, so only thread-local facts are asserted here.)
        // None of these may panic or observe anything on an untraced thread.
        count(TraceCounter::Retries, 1);
        let _s = span(SpanKind::Wal);
        assert_eq!(counter_value(TraceCounter::Retries), 0);
    }

    #[test]
    fn traces_do_not_nest() {
        let t = Trace::start("outer".into(), u64::MAX, ring()).unwrap();
        assert!(Trace::start("inner".into(), u64::MAX, ring()).is_none());
        drop(t);
        // The thread-local slot is free again after the drop.
        let again = Trace::start("after".into(), u64::MAX, ring()).unwrap();
        drop(again);
    }

    #[test]
    fn slow_ops_land_in_ring_and_ring_is_bounded() {
        let r = ring();
        for i in 0..6 {
            let t = Trace::start(format!("op-{i}"), 0, Arc::clone(&r)).unwrap();
            count(TraceCounter::RowsScanned, i);
            drop(t); // threshold 0: everything is "slow"
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.evicted(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.first().unwrap().label, "op-2");
        assert_eq!(snap.last().unwrap().label, "op-5");
        let json = r.dump_json();
        assert!(json.contains("\"evicted\": 2"));
        assert!(json.contains("\"op-5\""));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.evicted(), 0);
    }

    #[test]
    fn report_json_shape() {
        let t = Trace::start("q\"x\"".into(), u64::MAX, ring()).unwrap();
        count(TraceCounter::FetchBacks, 3);
        let json = t.finish().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"label\": \"q\\\"x\\\"\""));
        assert!(json.contains("\"fetchbacks\": 3"));
    }

    #[test]
    fn counter_value_reads_mid_trace() {
        let t = Trace::start("mid".into(), u64::MAX, ring()).unwrap();
        assert_eq!(counter_value(TraceCounter::NodeFetches), 0);
        count(TraceCounter::NodeFetches, 5);
        assert_eq!(counter_value(TraceCounter::NodeFetches), 5);
        drop(t);
    }
}
