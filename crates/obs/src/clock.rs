//! Clock reads and allocations that count themselves.
//!
//! All observability code obtains timestamps through [`now`] and reports
//! its allocations through [`note_alloc`], both of which bump thread-local
//! tallies.  This is what makes the "sampling off means truly off" claim
//! *testable*: a test runs N operations with every obs knob off and asserts
//! the per-thread deltas of [`clock_reads`] and [`tracked_allocs`] are
//! zero.  The counters are thread-local (plain `Cell`s, no atomics), so
//! maintaining them costs nothing measurable even on traced paths, and
//! concurrent tests in one binary cannot pollute each other's readings.

use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static CLOCK_READS: Cell<u64> = const { Cell::new(0) };
    static TRACKED_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Reads the monotonic clock, bumping this thread's clock-read tally.
#[inline]
pub fn now() -> Instant {
    CLOCK_READS.with(|c| c.set(c.get() + 1));
    Instant::now()
}

/// Microseconds elapsed since `start` (also a counted clock read).
#[inline]
pub fn elapsed_us(start: Instant) -> u64 {
    CLOCK_READS.with(|c| c.set(c.get() + 1));
    start.elapsed().as_micros() as u64
}

/// Total clock reads performed by observability code on this thread.
pub fn clock_reads() -> u64 {
    CLOCK_READS.with(|c| c.get())
}

/// Notes that observability code performed `n` heap allocations.
#[inline]
pub fn note_alloc(n: u64) {
    TRACKED_ALLOCS.with(|c| c.set(c.get() + n));
}

/// Total allocations noted by observability code on this thread.
pub fn tracked_allocs() -> u64 {
    TRACKED_ALLOCS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_tallied_per_thread() {
        let before = clock_reads();
        let t0 = now();
        let _ = elapsed_us(t0);
        assert_eq!(clock_reads(), before + 2);
        // Another thread starts from its own zero.
        std::thread::spawn(|| {
            assert_eq!(clock_reads(), 0);
            let _ = now();
            assert_eq!(clock_reads(), 1);
        })
        .join()
        .unwrap();
        // This thread's tally is unaffected by the other thread.
        assert_eq!(clock_reads(), before + 2);
    }

    #[test]
    fn allocs_are_tallied() {
        let before = tracked_allocs();
        note_alloc(3);
        assert_eq!(tracked_allocs(), before + 3);
    }
}
