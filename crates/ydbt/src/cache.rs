//! Client-side cache of inner nodes.
//!
//! Each Yesquel client caches the inner nodes of the trees it uses, so that
//! a warm lookup needs to fetch only the leaf (one RPC) instead of walking
//! the whole tree through the root.  Without this cache the server holding
//! the root becomes a bottleneck — the "no caching" ablation (F4 in
//! DESIGN.md) demonstrates exactly that.
//!
//! Cache entries can be stale: splits performed by other clients change the
//! tree underneath the cache.  Staleness is *detected*, not prevented: every
//! node carries its fence interval, and a search that lands on a node whose
//! interval does not contain the key invalidates the offending entries and
//! backs up (see `tree.rs`).

use std::collections::HashMap;

use parking_lot::Mutex;
use yesquel_common::stats::StatsRegistry;
use yesquel_common::{Oid, TreeId};

use crate::node::InnerNode;

/// Default bound on cached entries; when exceeded the cache is cleared
/// (inner nodes are tiny, so this is generous, and clearing is always safe —
/// the cache is only a performance hint).
const DEFAULT_MAX_ENTRIES: usize = 262_144;

/// A shared cache of inner nodes, keyed by `(tree, oid)`.
pub struct NodeCache {
    map: Mutex<HashMap<(TreeId, Oid), InnerNode>>,
    max_entries: usize,
    stats: StatsRegistry,
}

impl NodeCache {
    /// Creates an empty cache reporting into `stats`.
    pub fn new(stats: StatsRegistry) -> Self {
        Self::with_capacity(DEFAULT_MAX_ENTRIES, stats)
    }

    /// Creates an empty cache with an explicit entry bound.
    pub fn with_capacity(max_entries: usize, stats: StatsRegistry) -> Self {
        NodeCache { map: Mutex::new(HashMap::new()), max_entries: max_entries.max(16), stats }
    }

    /// Returns a clone of the cached inner node, if present.
    pub fn get(&self, tree: TreeId, oid: Oid) -> Option<InnerNode> {
        let g = self.map.lock();
        match g.get(&(tree, oid)) {
            Some(n) => {
                self.stats.counter("dbt.cache_hits").inc();
                Some(n.clone())
            }
            None => {
                self.stats.counter("dbt.cache_misses").inc();
                None
            }
        }
    }

    /// Inserts or refreshes an entry.
    pub fn put(&self, tree: TreeId, oid: Oid, node: InnerNode) {
        let mut g = self.map.lock();
        if g.len() >= self.max_entries {
            // Inner nodes are re-fetched lazily, so wholesale clearing is
            // safe and keeps the eviction policy trivial.
            g.clear();
            self.stats.counter("dbt.cache_evictions").inc();
        }
        g.insert((tree, oid), node);
    }

    /// Removes one entry (after a fence miss showed it was stale).
    pub fn invalidate(&self, tree: TreeId, oid: Oid) {
        self.map.lock().remove(&(tree, oid));
        self.stats.counter("dbt.cache_invalidations").inc();
    }

    /// Removes every entry of one tree (used when a tree is dropped).
    pub fn invalidate_tree(&self, tree: TreeId) {
        self.map.lock().retain(|(t, _), _| *t != tree);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Bound;

    fn inner(children: Vec<Oid>) -> InnerNode {
        InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![b"m".to_vec(); children.len().saturating_sub(1)],
            children,
            height: 1,
        }
    }

    #[test]
    fn put_get_invalidate() {
        let stats = StatsRegistry::new();
        let c = NodeCache::new(stats.clone());
        assert!(c.get(1, 0).is_none());
        c.put(1, 0, inner(vec![5, 6]));
        assert!(c.get(1, 0).is_some());
        assert_eq!(c.len(), 1);
        c.invalidate(1, 0);
        assert!(c.get(1, 0).is_none());
        assert_eq!(stats.counter("dbt.cache_hits").get(), 1);
        assert_eq!(stats.counter("dbt.cache_misses").get(), 2);
        assert_eq!(stats.counter("dbt.cache_invalidations").get(), 1);
    }

    #[test]
    fn invalidate_tree_scoped() {
        let c = NodeCache::new(StatsRegistry::new());
        c.put(1, 0, inner(vec![5, 6]));
        c.put(2, 0, inner(vec![7, 8]));
        c.invalidate_tree(1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some());
    }

    #[test]
    fn capacity_bound_clears() {
        let stats = StatsRegistry::new();
        let c = NodeCache::with_capacity(16, stats.clone());
        for oid in 0..40u64 {
            c.put(1, oid, inner(vec![oid + 100, oid + 200]));
        }
        assert!(c.len() <= 17);
        assert!(stats.counter("dbt.cache_evictions").get() >= 1);
    }
}
