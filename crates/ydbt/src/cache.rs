//! Client-side cache of inner nodes.
//!
//! Each Yesquel client caches the inner nodes of the trees it uses, so that
//! a warm lookup needs to fetch only the leaf (one RPC) instead of walking
//! the whole tree through the root.  Without this cache the server holding
//! the root becomes a bottleneck — the "no caching" ablation (F4 in
//! DESIGN.md) demonstrates exactly that.
//!
//! Cache entries can be stale: splits performed by other clients change the
//! tree underneath the cache.  Staleness is *detected*, not prevented: every
//! node carries its fence interval, and a search that lands on a node whose
//! interval does not contain the key invalidates the offending entries and
//! backs up (see `tree.rs`).
//!
//! ## Hot-path behaviour
//!
//! The cache sits on the point-read fast path (one probe per tree level per
//! lookup), so it is built to cost almost nothing:
//!
//! * entries are [`InnerView`]s — lazy views over the encoded page.  A hit
//!   clones the view, which is one reference-count bump on the page buffer
//!   plus a few words; no node is ever materialised for the cache;
//! * the map is split over [`CACHE_SHARDS`] independently locked shards so
//!   concurrent client threads do not serialize on one mutex;
//! * the hit/miss/invalidation counters are resolved **once** at
//!   construction — bumping them is a relaxed atomic add, not a registry
//!   lookup (which takes a mutex and walks a `BTreeMap`);
//! * overflow is handled per shard by **second-chance eviction**: entries
//!   touched since the last sweep survive, untouched ones go.  The previous
//!   policy cleared the whole cache, which made every client re-walk every
//!   tree from the root after each overflow.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use yesquel_common::ids::shard_index;
use yesquel_common::stats::{Counter, StatsRegistry};
use yesquel_common::{Oid, TreeId};

use crate::node::InnerView;

/// Default bound on cached entries; inner nodes are tiny, so this is
/// generous.
const DEFAULT_MAX_ENTRIES: usize = 262_144;

/// Number of cache shards (power of two).
pub const CACHE_SHARDS: usize = 16;

struct Entry {
    view: InnerView,
    /// Second-chance bit: set on every hit, cleared by an eviction sweep.
    referenced: bool,
}

#[derive(Default)]
struct CacheShard {
    map: HashMap<(TreeId, Oid), Entry>,
}

impl CacheShard {
    /// Evicts entries not referenced since the last sweep and clears the
    /// bit on the survivors.  If every entry was recently referenced nothing
    /// is evicted this round — the bits are now cleared, so the next
    /// overflow sweep reclaims whatever was not touched in between; the
    /// shard overshoots its bound by at most the inserts between two sweeps.
    fn sweep(&mut self) -> usize {
        let before = self.map.len();
        self.map
            .retain(|_, e| std::mem::replace(&mut e.referenced, false));
        before - self.map.len()
    }
}

/// A shared cache of inner nodes, keyed by `(tree, oid)`.
pub struct NodeCache {
    shards: Vec<Mutex<CacheShard>>,
    max_per_shard: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    invalidations: Arc<Counter>,
}

impl NodeCache {
    /// Creates an empty cache reporting into `stats`.
    pub fn new(stats: StatsRegistry) -> Self {
        Self::with_capacity(DEFAULT_MAX_ENTRIES, stats)
    }

    /// Creates an empty cache with an explicit entry bound.
    pub fn with_capacity(max_entries: usize, stats: StatsRegistry) -> Self {
        NodeCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            max_per_shard: (max_entries.max(CACHE_SHARDS) / CACHE_SHARDS).max(1),
            hits: stats.counter("dbt.cache_hits"),
            misses: stats.counter("dbt.cache_misses"),
            evictions: stats.counter("dbt.cache_evictions"),
            invalidations: stats.counter("dbt.cache_invalidations"),
        }
    }

    fn shard_of(tree: TreeId, oid: Oid) -> usize {
        shard_index(tree, oid, 0x1234_5678_9abc_def0, CACHE_SHARDS)
    }

    /// Returns the cached inner-node view, if present.  A hit clones the
    /// view — a reference-count bump on the page, never a materialisation.
    pub fn get(&self, tree: TreeId, oid: Oid) -> Option<InnerView> {
        let mut g = self.shards[Self::shard_of(tree, oid)].lock();
        match g.map.get_mut(&(tree, oid)) {
            Some(e) => {
                e.referenced = true;
                self.hits.inc();
                Some(e.view.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts or refreshes an entry.
    pub fn put(&self, tree: TreeId, oid: Oid, view: InnerView) {
        let mut g = self.shards[Self::shard_of(tree, oid)].lock();
        // Refreshing an existing entry cannot grow the shard, so it must not
        // trigger an eviction sweep (a refresh-heavy phase would otherwise
        // purge its neighbours for nothing).
        if g.map.len() >= self.max_per_shard && !g.map.contains_key(&(tree, oid)) {
            let evicted = g.sweep();
            if evicted > 0 {
                self.evictions.add(evicted as u64);
            }
        }
        g.map.insert(
            (tree, oid),
            Entry {
                view,
                referenced: false,
            },
        );
    }

    /// Removes one entry (after a fence miss showed it was stale).
    pub fn invalidate(&self, tree: TreeId, oid: Oid) {
        self.shards[Self::shard_of(tree, oid)]
            .lock()
            .map
            .remove(&(tree, oid));
        self.invalidations.inc();
    }

    /// Removes every entry of one tree (used when a tree is dropped).
    pub fn invalidate_tree(&self, tree: TreeId) {
        for shard in &self.shards {
            shard.lock().map.retain(|(t, _), _| *t != tree);
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Bound, InnerNode, Node};
    use bytes::Bytes;

    fn inner(children: Vec<Oid>) -> InnerView {
        let node = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![Bytes::from_static(b"m"); children.len().saturating_sub(1)],
            children,
            height: 1,
            replicas: vec![],
        };
        InnerView::parse(Bytes::from(Node::Inner(node).encode())).unwrap()
    }

    #[test]
    fn put_get_invalidate() {
        let stats = StatsRegistry::new();
        let c = NodeCache::new(stats.clone());
        assert!(c.get(1, 0).is_none());
        c.put(1, 0, inner(vec![5, 6]));
        assert!(c.get(1, 0).is_some());
        assert_eq!(c.len(), 1);
        c.invalidate(1, 0);
        assert!(c.get(1, 0).is_none());
        assert_eq!(stats.counter("dbt.cache_hits").get(), 1);
        assert_eq!(stats.counter("dbt.cache_misses").get(), 2);
        assert_eq!(stats.counter("dbt.cache_invalidations").get(), 1);
    }

    #[test]
    fn hits_share_the_encoded_page() {
        let c = NodeCache::new(StatsRegistry::new());
        c.put(1, 0, inner(vec![5, 6]));
        let a = c.get(1, 0).unwrap();
        let b = c.get(1, 0).unwrap();
        // Both hits route through the same page bytes (the views are clones
        // sharing one buffer, not re-parses of separate copies).
        assert_eq!(a.child_for(b"a").unwrap(), b.child_for(b"a").unwrap());
        assert_eq!(a.first_child(), 5);
        assert_eq!(a.child_for(b"z").unwrap(), 6);
    }

    #[test]
    fn invalidate_tree_scoped() {
        let c = NodeCache::new(StatsRegistry::new());
        c.put(1, 0, inner(vec![5, 6]));
        c.put(2, 0, inner(vec![7, 8]));
        c.invalidate_tree(1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some());
    }

    #[test]
    fn capacity_bound_evicts() {
        let stats = StatsRegistry::new();
        let c = NodeCache::with_capacity(16, stats.clone());
        for oid in 0..200u64 {
            c.put(1, oid, inner(vec![oid + 100, oid + 200]));
        }
        assert!(
            c.len() <= 2 * CACHE_SHARDS,
            "cache grew unboundedly: {}",
            c.len()
        );
        assert!(stats.counter("dbt.cache_evictions").get() >= 1);
    }

    #[test]
    fn second_chance_keeps_recently_used() {
        let stats = StatsRegistry::new();
        // One entry per shard before overflow.
        let c = NodeCache::with_capacity(CACHE_SHARDS * 4, stats.clone());
        // Find two oids in the same shard.
        let shard0 = NodeCache::shard_of(1, 0);
        let mut same: Vec<Oid> = Vec::new();
        let mut oid = 0;
        while same.len() < 6 {
            if NodeCache::shard_of(1, oid) == shard0 {
                same.push(oid);
            }
            oid += 1;
        }
        // Fill the shard to its bound (4 entries), touch the first one, then
        // overflow: the touched entry must survive the sweep.
        for &o in &same[..4] {
            c.put(1, o, inner(vec![o + 1, o + 2]));
        }
        assert!(c.get(1, same[0]).is_some());
        c.put(1, same[4], inner(vec![1, 2]));
        assert!(
            c.get(1, same[0]).is_some(),
            "recently used entry was evicted"
        );
        assert!(
            c.get(1, same[1]).is_none(),
            "untouched entry should have been evicted"
        );
    }
}
