//! The DBT engine: per-client state shared by all trees the client uses.
//!
//! In the paper's architecture every client process links the storage-engine
//! library; the engine here is that library's state: the key-value client,
//! the cache of inner nodes, the load tracker, the node-id allocator, the
//! client's map of known replica sets, and (when splits are delegated or
//! hot-node replication is enabled) the background maintenance task.

use std::sync::Arc;

use yesquel_common::config::SplitMode;
use yesquel_common::ids::ROOT_OID;
use yesquel_common::stats::{Counter, Histogram, StatsRegistry};
use yesquel_common::{DbtConfig, Error, ObjectId, Oid, Result, TreeId};
use yesquel_kv::KvClient;

use crate::alloc::OidAllocator;
use crate::cache::NodeCache;
use crate::load::LoadTracker;
use crate::node::{LeafNode, Node};
use crate::replica::{PlacementTracker, ReplicaMap};
use crate::split::{MaintRequest, SplitContext, SplitRequest, Splitter};
use crate::tree::Dbt;

/// Counters bumped on the per-operation hot paths, resolved from the
/// registry **once** at engine construction.  Resolving a counter by name
/// takes the registry mutex and walks a `BTreeMap`; doing that four times
/// per microsecond-scale point read is measurable, so the hot paths bump
/// these pre-resolved handles (a relaxed atomic add) instead.
pub(crate) struct HotCounters {
    pub(crate) lookups: Arc<Counter>,
    pub(crate) inserts: Arc<Counter>,
    pub(crate) deletes: Arc<Counter>,
    pub(crate) scans: Arc<Counter>,
    pub(crate) node_fetches: Arc<Counter>,
    pub(crate) search_restarts: Arc<Counter>,
    pub(crate) back_downs: Arc<Counter>,
    pub(crate) scan_leaf_fetches: Arc<Counter>,
    /// Reads served by a replica instead of the primary (read-any hits).
    pub(crate) replica_reads: Arc<Counter>,
    /// Node writes that fanned out to a replica set (write-all).
    pub(crate) replica_fanout_writes: Arc<Counter>,
    /// Node fetches per root-to-leaf descent (recorded only while
    /// `Obs::timing_on`; cache hits make the common warm value 1).
    pub(crate) descent_fetches: Arc<Histogram>,
}

impl HotCounters {
    fn new(stats: &StatsRegistry) -> Self {
        HotCounters {
            lookups: stats.counter("dbt.lookups"),
            inserts: stats.counter("dbt.inserts"),
            deletes: stats.counter("dbt.deletes"),
            scans: stats.counter("dbt.scans"),
            node_fetches: stats.counter("dbt.node_fetches"),
            search_restarts: stats.counter("dbt.search_restarts"),
            back_downs: stats.counter("dbt.back_downs"),
            scan_leaf_fetches: stats.counter("dbt.scan_leaf_fetches"),
            replica_reads: stats.counter("dbt.replica_reads"),
            replica_fanout_writes: stats.counter("dbt.replica_fanout_writes"),
            descent_fetches: stats.histogram("dbt.descent_fetches"),
        }
    }
}

/// Per-client DBT engine.  Create one per client process (or one per test)
/// and open any number of trees through it.
pub struct DbtEngine {
    kv: KvClient,
    cfg: DbtConfig,
    cache: Arc<NodeCache>,
    load: Arc<LoadTracker>,
    alloc: OidAllocator,
    stats: StatsRegistry,
    counters: HotCounters,
    replicas: Arc<ReplicaMap>,
    placement: Arc<PlacementTracker>,
    /// Background maintenance worker (delegated splits and replica
    /// promotions); absent when neither feature needs it.
    splitter: Option<Splitter>,
    /// Resolved once: replication needs opt-in, a factor, and more than one
    /// server to replicate onto.
    replication_on: bool,
}

impl DbtEngine {
    /// Creates an engine over an existing key-value client.
    pub fn new(kv: KvClient, cfg: DbtConfig) -> Arc<DbtEngine> {
        let stats = kv.stats().clone();
        let cache = Arc::new(NodeCache::new(stats.clone()));
        let load = Arc::new(LoadTracker::new(cfg.load_split_threshold));
        let alloc = OidAllocator::new(kv.clone());
        let replicas = Arc::new(ReplicaMap::new());
        let placement = Arc::new(PlacementTracker::new());
        let replication_on =
            cfg.replicate_hot_nodes && cfg.replica_factor > 0 && kv.num_servers() > 1;
        // The worker serves delegated splits and replica promotions; spawn
        // it if either needs it, so synchronous-split engines still promote
        // hot nodes in the background.
        let splitter = if cfg.split_mode == SplitMode::Delegated || replication_on {
            Some(Splitter::spawn(SplitContext {
                kv: kv.clone(),
                cfg: cfg.clone(),
                cache: Arc::clone(&cache),
                load: Arc::clone(&load),
                alloc: alloc.clone(),
                stats: stats.clone(),
                replicas: Arc::clone(&replicas),
                placement: Arc::clone(&placement),
            }))
        } else {
            None
        };
        Arc::new(DbtEngine {
            kv,
            cfg,
            cache,
            load,
            alloc,
            counters: HotCounters::new(&stats),
            stats,
            replicas,
            placement,
            splitter,
            replication_on,
        })
    }

    /// The key-value client this engine issues its operations through.
    pub fn kv(&self) -> &KvClient {
        &self.kv
    }

    /// The engine's DBT configuration.
    pub fn config(&self) -> &DbtConfig {
        &self.cfg
    }

    /// The statistics registry shared with the lower layers.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// The client cache of inner nodes.
    pub(crate) fn cache(&self) -> &NodeCache {
        &self.cache
    }

    /// Pre-resolved hot-path counters.
    pub(crate) fn counters(&self) -> &HotCounters {
        &self.counters
    }

    /// The load tracker used for load splits and replica promotions.
    pub(crate) fn load(&self) -> &LoadTracker {
        &self.load
    }

    /// The client's map of known replica sets.
    pub(crate) fn replicas(&self) -> &ReplicaMap {
        &self.replicas
    }

    /// True if hot-node replication is active for this engine.
    pub(crate) fn replication_enabled(&self) -> bool {
        self.replication_on
    }

    /// Number of inner nodes currently cached (diagnostics).
    pub fn cached_nodes(&self) -> usize {
        self.cache.len()
    }

    /// Number of nodes whose replica set this client knows (diagnostics).
    pub fn known_replica_sets(&self) -> usize {
        self.replicas.len()
    }

    /// Drops every cached inner node of `tree`.  The cache is a performance
    /// hint, so this is always safe; benchmarks use it to measure cold-cache
    /// lookups and tests use it to force back-down searches.
    pub fn invalidate_cache(&self, tree: TreeId) {
        self.cache.invalidate_tree(tree);
    }

    /// Initialises `tree`: writes an empty root leaf.  Fails if the tree
    /// already exists.
    pub fn create_tree(&self, tree: TreeId) -> Result<()> {
        let txn = self.kv.begin();
        if txn.get(ObjectId::root(tree))?.is_some() {
            txn.abort();
            return Err(Error::InvalidArgument(format!(
                "tree {tree} already exists"
            )));
        }
        txn.put(
            ObjectId::root(tree),
            Node::Leaf(LeafNode::empty_root()).encode(),
        )?;
        txn.commit()?;
        Ok(())
    }

    /// Removes every node of `tree` reachable from its root, in its own
    /// transaction.  (Unreachable nodes left behind by unfinished splits are
    /// reclaimed by GC of their versions.)
    pub fn drop_tree(&self, tree: TreeId) -> Result<()> {
        let txn = self.kv.begin();
        self.drop_tree_in_txn(&txn, tree)?;
        txn.commit()?;
        Ok(())
    }

    /// Removes every node of `tree` reachable from its root, as part of the
    /// caller's transaction (used by `DROP TABLE`, which also removes the
    /// catalog entry in the same transaction).
    pub fn drop_tree_in_txn(&self, txn: &yesquel_kv::Txn, tree: TreeId) -> Result<()> {
        // Walk the tree and delete every node, including replica copies.
        let mut queue = vec![ROOT_OID];
        while let Some(oid) = queue.pop() {
            if let Some(node) = crate::tree::fetch_node(txn, tree, oid)? {
                if let Node::Inner(inner) = &node {
                    queue.extend(inner.children.iter().copied());
                }
                for r in node.replicas() {
                    txn.delete(ObjectId::new(tree, *r))?;
                }
            }
            txn.delete(ObjectId::new(tree, oid))?;
        }
        self.cache.invalidate_tree(tree);
        self.replicas.forget_tree(tree);
        Ok(())
    }

    /// Opens a handle to `tree`.  The tree must have been created (by this
    /// client or any other) before operations are issued through the handle.
    pub fn tree(self: &Arc<Self>, tree: TreeId) -> Dbt {
        Dbt::new(Arc::clone(self), tree)
    }

    /// Builds the context handed to the split machinery.
    pub(crate) fn split_ctx(&self) -> SplitContext {
        SplitContext {
            kv: self.kv.clone(),
            cfg: self.cfg.clone(),
            cache: Arc::clone(&self.cache),
            load: Arc::clone(&self.load),
            alloc: self.alloc.clone(),
            stats: self.stats.clone(),
            replicas: Arc::clone(&self.replicas),
            placement: Arc::clone(&self.placement),
        }
    }

    /// Routes a split request: enqueued to the maintenance worker when
    /// delegated splitting is active, otherwise ignored (the synchronous
    /// path splits inline and never calls this; the worker may exist purely
    /// for replication).
    pub(crate) fn request_split(&self, req: SplitRequest) {
        if self.cfg.split_mode != SplitMode::Delegated {
            return;
        }
        if let Some(s) = &self.splitter {
            s.request(MaintRequest::Split(req));
            self.stats.counter("dbt.split_requests").inc();
        }
    }

    /// Enqueues a replica promotion of a read-hot node to the maintenance
    /// worker.
    pub(crate) fn request_replicate(&self, tree: TreeId, oid: Oid) {
        if !self.replication_on {
            return;
        }
        if let Some(s) = &self.splitter {
            s.request(MaintRequest::Replicate { tree, oid });
            self.stats.counter("dbt.replica_requests").inc();
        }
    }

    /// Blocks until every queued maintenance request (delegated splits,
    /// replica promotions) has been processed.  Tests and benchmark loaders
    /// call this to reach a quiescent tree before measuring.
    pub fn wait_for_splits(&self) {
        if let Some(s) = &self.splitter {
            s.wait_idle();
        }
    }

    /// Number of maintenance requests still queued (diagnostics).
    pub fn pending_splits(&self) -> usize {
        self.splitter
            .as_ref()
            .map(|s| s.pending_count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yesquel_kv::KvDatabase;

    #[test]
    fn create_tree_twice_fails() {
        let db = KvDatabase::with_servers(2);
        let engine = DbtEngine::new(db.client(), DbtConfig::default());
        engine.create_tree(5).unwrap();
        assert!(engine.create_tree(5).is_err());
    }

    #[test]
    fn engine_without_delegation_or_replication_has_no_worker() {
        let db = KvDatabase::with_servers(1);
        // Synchronous splits and a single server (replication cannot apply):
        // no background thread at all.
        let engine = DbtEngine::new(db.client(), DbtConfig::ablation_sync_splits());
        assert!(!engine.replication_enabled());
        assert_eq!(engine.pending_splits(), 0);
        engine.wait_for_splits(); // no-op
    }

    #[test]
    fn replication_gates_on_config_and_cluster_size() {
        let multi = KvDatabase::with_servers(4);
        assert!(DbtEngine::new(multi.client(), DbtConfig::default()).replication_enabled());
        assert!(
            !DbtEngine::new(multi.client(), DbtConfig::ablation_no_replication())
                .replication_enabled()
        );
        let single = KvDatabase::with_servers(1);
        assert!(!DbtEngine::new(single.client(), DbtConfig::default()).replication_enabled());
    }

    #[test]
    fn drop_tree_removes_nodes() {
        let db = KvDatabase::with_servers(2);
        let engine = DbtEngine::new(db.client(), DbtConfig::default());
        engine.create_tree(9).unwrap();
        let objects_before = db.total_objects();
        engine.drop_tree(9).unwrap();
        // The root's tombstone means the object may still exist as versions,
        // but a fresh read must see nothing.
        let txn = db.client().begin();
        assert!(txn.get(ObjectId::root(9)).unwrap().is_none());
        txn.commit().unwrap();
        assert!(db.total_objects() >= objects_before);
    }
}
