//! Tree-node representation and its binary encoding.
//!
//! Every node of a YDBT is stored as one key-value pair in the transactional
//! key-value store: the key is the node's [`ObjectId`](yesquel_common::ObjectId)
//! and the value is the encoding defined here.  Nodes carry their **fence
//! interval** `[lower, upper)` — the range of keys the node is responsible
//! for — which is what lets clients detect that a cached path is stale (the
//! "back-down search" of the paper): if a search for key `k` arrives at a
//! node whose fence interval does not contain `k`, the client's cache was
//! out of date and the search backs up.
//!
//! ## Decoding without copies
//!
//! Nodes arrive from the key-value store as [`Bytes`] — a reference-counted
//! buffer.  [`Node::decode_shared`] decodes by **slicing** that buffer:
//! cell values, fence-bound keys and inner separator keys all share the
//! fetched allocation instead of being copied out one by one.  A warm point
//! read therefore performs no per-value allocation between the RPC and the
//! caller.  ([`Node::decode`] remains for callers holding a bare slice; it
//! makes one copy of the whole buffer and then shares it.)

use bytes::Bytes;
use yesquel_common::encoding::{Reader, Writer};
use yesquel_common::{Error, Oid, Result};

/// One endpoint of a fence interval.
///
/// Keys are held as [`Bytes`] so that cloning a bound (which splits do
/// repeatedly when rebuilding fences) is a reference-count bump, and so that
/// decoded bounds can share the node's backing buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// Below every key.
    NegInf,
    /// An actual key.
    Key(Bytes),
    /// Above every key.
    PosInf,
}

impl Bound {
    /// A key bound copied from a slice (convenience for construction sites
    /// that do not hold shared bytes).
    pub fn key(k: &[u8]) -> Bound {
        Bound::Key(Bytes::copy_from_slice(k))
    }

    /// True if `key` is ≥ this bound when used as a lower bound.
    pub fn le_key(&self, key: &[u8]) -> bool {
        match self {
            Bound::NegInf => true,
            Bound::Key(k) => &k[..] <= key,
            Bound::PosInf => false,
        }
    }

    /// True if `key` is < this bound when used as an upper bound.
    pub fn gt_key(&self, key: &[u8]) -> bool {
        match self {
            Bound::NegInf => false,
            Bound::Key(k) => key < &k[..],
            Bound::PosInf => true,
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            Bound::NegInf => {
                w.u8(0);
            }
            Bound::Key(k) => {
                w.u8(1);
                w.bytes(k);
            }
            Bound::PosInf => {
                w.u8(2);
            }
        }
    }

    fn decode(r: &mut Reader<'_>, src: &Bytes) -> Result<Bound> {
        match r.u8()? {
            0 => Ok(Bound::NegInf),
            1 => Ok(Bound::Key(read_shared(r, src)?)),
            2 => Ok(Bound::PosInf),
            t => Err(Error::Corruption(format!("bad bound tag {t}"))),
        }
    }
}

/// Reads a length-prefixed byte string as a zero-copy slice of `src` (the
/// buffer `r` is positioned in).
fn read_shared(r: &mut Reader<'_>, src: &Bytes) -> Result<Bytes> {
    let slice = r.bytes()?;
    let end = r.pos();
    Ok(src.slice(end - slice.len()..end))
}

/// Returns true if `key` lies in the fence interval `[lower, upper)`.
pub fn fence_contains(lower: &Bound, upper: &Bound, key: &[u8]) -> bool {
    lower.le_key(key) && upper.gt_key(key)
}

/// A leaf node: sorted cells of `(key, value)` plus a pointer to the right
/// sibling (used by range scans and by the stale-cache recovery path).
#[derive(Debug, Clone, PartialEq)]
pub struct LeafNode {
    /// Inclusive lower fence.
    pub lower: Bound,
    /// Exclusive upper fence.
    pub upper: Bound,
    /// Sorted cells.
    pub cells: Vec<(Vec<u8>, Bytes)>,
    /// Right sibling, if any.
    pub next: Option<Oid>,
}

impl LeafNode {
    /// An empty leaf responsible for the whole key space (a new tree's root).
    pub fn empty_root() -> Self {
        LeafNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            cells: Vec::new(),
            next: None,
        }
    }

    /// True if `key` is within this leaf's fence interval.
    pub fn fence_contains(&self, key: &[u8]) -> bool {
        fence_contains(&self.lower, &self.upper, key)
    }

    /// Looks up `key` among the cells.
    pub fn find(&self, key: &[u8]) -> Option<&Bytes> {
        self.cells
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| &self.cells[i].1)
    }

    /// Index of the first cell with key ≥ `key`.
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        self.cells.partition_point(|(k, _)| k.as_slice() < key)
    }

    /// Inserts or replaces a cell; returns true if an existing cell was
    /// replaced.
    ///
    /// Takes the key by reference and only allocates when a new cell is
    /// actually inserted: replacing an existing cell — the common case for
    /// update-heavy workloads — is allocation-free.
    pub fn insert_cell(&mut self, key: &[u8], value: Bytes) -> bool {
        match self.cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                self.cells[i].1 = value;
                true
            }
            Err(i) => {
                self.cells.insert(i, (key.to_vec(), value));
                false
            }
        }
    }

    /// Removes the cell with `key`; returns true if it existed.
    pub fn remove_cell(&mut self, key: &[u8]) -> bool {
        match self.cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                self.cells.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the leaf has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// An inner node: `children[i]` is responsible for keys in
/// `[keys[i-1], keys[i])`, with the node's own fences standing in at the
/// ends (`keys.len() == children.len() - 1`).
///
/// Separator keys are [`Bytes`]: decoded inner nodes share their backing
/// buffer (no per-key allocation on fetch) and splitting an inner node moves
/// and clones separators by reference-count bump instead of `Vec` copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerNode {
    /// Inclusive lower fence.
    pub lower: Bound,
    /// Exclusive upper fence.
    pub upper: Bound,
    /// Separator keys.
    pub keys: Vec<Bytes>,
    /// Child object ids.
    pub children: Vec<Oid>,
    /// Height above the leaves (1 = children are leaves).
    pub height: u8,
}

impl InnerNode {
    /// True if `key` is within this node's fence interval.
    pub fn fence_contains(&self, key: &[u8]) -> bool {
        fence_contains(&self.lower, &self.upper, key)
    }

    /// Index of the child responsible for `key`.
    pub fn child_index(&self, key: &[u8]) -> usize {
        self.keys.partition_point(|k| &k[..] <= key)
    }

    /// Object id of the child responsible for `key`.
    pub fn child_for(&self, key: &[u8]) -> Oid {
        self.children[self.child_index(key)]
    }

    /// Inserts separator `key` and child `oid` immediately after child
    /// `after_index` (the child that was split).
    pub fn insert_child_after(&mut self, after_index: usize, key: Bytes, oid: Oid) {
        debug_assert!(after_index < self.children.len());
        self.keys.insert(after_index, key);
        self.children.insert(after_index + 1, oid);
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True if the node has no children (never the case for a valid node).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// The leftmost child (used when descending for the smallest key).
    pub fn first_child(&self) -> Oid {
        self.children[0]
    }
}

/// A tree node, as stored in the key-value store.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Leaf node.
    Leaf(LeafNode),
    /// Inner node.
    Inner(InnerNode),
}

const LEAF_TAG: u8 = 0xd1;
const INNER_TAG: u8 = 0xd2;

impl Node {
    /// Height above the leaves (0 for a leaf).
    pub fn height(&self) -> u8 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner(i) => i.height,
        }
    }

    /// Returns the leaf, or an error if this is an inner node.
    pub fn into_leaf(self) -> Result<LeafNode> {
        match self {
            Node::Leaf(l) => Ok(l),
            Node::Inner(_) => Err(Error::Corruption("expected leaf, found inner node".into())),
        }
    }

    /// Returns the inner node, or an error if this is a leaf.
    pub fn into_inner(self) -> Result<InnerNode> {
        match self {
            Node::Inner(i) => Ok(i),
            Node::Leaf(_) => Err(Error::Corruption("expected inner node, found leaf".into())),
        }
    }

    /// Serializes the node into the byte string stored in the key-value
    /// store.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(256);
        match self {
            Node::Leaf(l) => {
                w.u8(LEAF_TAG);
                l.lower.encode(&mut w);
                l.upper.encode(&mut w);
                w.u8(if l.next.is_some() { 1 } else { 0 });
                if let Some(n) = l.next {
                    w.u64(n);
                }
                w.uvarint(l.cells.len() as u64);
                for (k, v) in &l.cells {
                    w.bytes(k);
                    w.bytes(v);
                }
            }
            Node::Inner(i) => {
                w.u8(INNER_TAG);
                i.lower.encode(&mut w);
                i.upper.encode(&mut w);
                w.u8(i.height);
                w.uvarint(i.children.len() as u64);
                for c in &i.children {
                    w.u64(*c);
                }
                for k in &i.keys {
                    w.bytes(k);
                }
            }
        }
        w.finish()
    }

    /// Decodes a node from a bare slice.  Copies the buffer once and then
    /// shares it; callers that already hold [`Bytes`] (everything on the
    /// fetch path) should use [`Node::decode_shared`] instead.
    pub fn decode(buf: &[u8]) -> Result<Node> {
        Self::decode_shared(&Bytes::copy_from_slice(buf))
    }

    /// Decodes a node previously produced by [`Node::encode`], sharing the
    /// backing buffer: cell values, fence-bound keys and inner separator
    /// keys are slices of `buf`, not copies.  Only leaf cell *keys* are
    /// materialised as `Vec<u8>` (they are mutated in place by inserts).
    pub fn decode_shared(buf: &Bytes) -> Result<Node> {
        let mut r = Reader::new(buf);
        match r.u8()? {
            LEAF_TAG => {
                let lower = Bound::decode(&mut r, buf)?;
                let upper = Bound::decode(&mut r, buf)?;
                let has_next = r.u8()? == 1;
                let next = if has_next { Some(r.u64()?) } else { None };
                let n = r.uvarint()? as usize;
                let mut cells = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = r.bytes()?.to_vec();
                    let v = read_shared(&mut r, buf)?;
                    cells.push((k, v));
                }
                Ok(Node::Leaf(LeafNode {
                    lower,
                    upper,
                    cells,
                    next,
                }))
            }
            INNER_TAG => {
                let lower = Bound::decode(&mut r, buf)?;
                let upper = Bound::decode(&mut r, buf)?;
                let height = r.u8()?;
                let n = r.uvarint()? as usize;
                if n == 0 {
                    return Err(Error::Corruption("inner node with no children".into()));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(r.u64()?);
                }
                let mut keys = Vec::with_capacity(n - 1);
                for _ in 0..n - 1 {
                    keys.push(read_shared(&mut r, buf)?);
                }
                Ok(Node::Inner(InnerNode {
                    lower,
                    upper,
                    keys,
                    children,
                    height,
                }))
            }
            t => Err(Error::Corruption(format!("bad node tag 0x{t:02x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn v(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn bound_comparisons() {
        assert!(Bound::NegInf.le_key(b""));
        assert!(!Bound::PosInf.le_key(b"zzz"));
        assert!(Bound::PosInf.gt_key(b"zzz"));
        assert!(!Bound::NegInf.gt_key(b""));
        assert!(Bound::Key(k("m")).le_key(b"m"));
        assert!(Bound::Key(k("m")).le_key(b"z"));
        assert!(!Bound::Key(k("m")).le_key(b"a"));
        assert!(Bound::Key(k("m")).gt_key(b"a"));
        assert!(!Bound::Key(k("m")).gt_key(b"m"));
        assert_eq!(Bound::key(b"m"), Bound::Key(k("m")));
    }

    #[test]
    fn fence_interval_semantics() {
        let lower = Bound::Key(k("b"));
        let upper = Bound::Key(k("f"));
        assert!(fence_contains(&lower, &upper, b"b"));
        assert!(fence_contains(&lower, &upper, b"e"));
        assert!(!fence_contains(&lower, &upper, b"f"));
        assert!(!fence_contains(&lower, &upper, b"a"));
    }

    #[test]
    fn leaf_insert_find_remove() {
        let mut l = LeafNode::empty_root();
        assert!(!l.insert_cell(b"b", v("2")));
        assert!(!l.insert_cell(b"a", v("1")));
        assert!(!l.insert_cell(b"c", v("3")));
        assert!(l.insert_cell(b"b", v("2b"))); // replace
        assert_eq!(l.len(), 3);
        assert_eq!(l.find(b"b"), Some(&v("2b")));
        assert_eq!(l.find(b"z"), None);
        assert_eq!(l.lower_bound(b"b"), 1);
        assert_eq!(l.lower_bound(b"bb"), 2);
        assert!(l.remove_cell(b"a"));
        assert!(!l.remove_cell(b"a"));
        assert_eq!(l.len(), 2);
        // Cells stay sorted.
        let keys: Vec<_> = l.cells.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn inner_child_routing() {
        let inner = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![k("g"), k("p")],
            children: vec![10, 20, 30],
            height: 1,
        };
        assert_eq!(inner.child_for(b"a"), 10);
        assert_eq!(inner.child_for(b"f"), 10);
        assert_eq!(inner.child_for(b"g"), 20);
        assert_eq!(inner.child_for(b"o"), 20);
        assert_eq!(inner.child_for(b"p"), 30);
        assert_eq!(inner.child_for(b"z"), 30);
        assert_eq!(inner.first_child(), 10);
    }

    #[test]
    fn inner_insert_child_after() {
        let mut inner = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![k("m")],
            children: vec![1, 2],
            height: 1,
        };
        // Child 0 splits at "f": new right half gets oid 3.
        inner.insert_child_after(0, k("f"), 3);
        assert_eq!(inner.keys, vec![k("f"), k("m")]);
        assert_eq!(inner.children, vec![1, 3, 2]);
        assert_eq!(inner.child_for(b"a"), 1);
        assert_eq!(inner.child_for(b"g"), 3);
        assert_eq!(inner.child_for(b"x"), 2);
    }

    #[test]
    fn node_encode_decode_roundtrip() {
        let leaf = Node::Leaf(LeafNode {
            lower: Bound::Key(k("b")),
            upper: Bound::PosInf,
            cells: vec![(b"b".to_vec(), v("vb")), (b"c".to_vec(), v("vc"))],
            next: Some(42),
        });
        let buf = leaf.encode();
        assert_eq!(Node::decode(&buf).unwrap(), leaf);

        let inner = Node::Inner(InnerNode {
            lower: Bound::NegInf,
            upper: Bound::Key(k("zz")),
            keys: vec![k("g")],
            children: vec![7, 9],
            height: 3,
        });
        let buf = inner.encode();
        assert_eq!(Node::decode(&buf).unwrap(), inner);
    }

    #[test]
    fn decode_shared_slices_backing_buffer() {
        let leaf = Node::Leaf(LeafNode {
            lower: Bound::Key(k("b")),
            upper: Bound::PosInf,
            cells: vec![(b"b".to_vec(), v("value-b")), (b"c".to_vec(), v("value-c"))],
            next: None,
        });
        let buf = Bytes::from(leaf.encode());
        let decoded = Node::decode_shared(&buf).unwrap();
        assert_eq!(decoded, leaf);
        let Node::Leaf(l) = decoded else {
            panic!("leaf expected")
        };
        // Zero-copy: each value points inside the encoded buffer.
        let base = buf.as_ref().as_ptr() as usize;
        let end = base + buf.len();
        for (_, value) in &l.cells {
            let p = value.as_ref().as_ptr() as usize;
            assert!(
                p >= base && p + value.len() <= end,
                "value copied instead of sliced"
            );
        }
        if let Bound::Key(bk) = &l.lower {
            let p = bk.as_ref().as_ptr() as usize;
            assert!(
                p >= base && p + bk.len() <= end,
                "bound key copied instead of sliced"
            );
        }
    }

    #[test]
    fn decode_shared_inner_keys_are_slices() {
        let inner = Node::Inner(InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![k("separator-g"), k("separator-p")],
            children: vec![7, 9, 11],
            height: 1,
        });
        let buf = Bytes::from(inner.encode());
        let Node::Inner(i) = Node::decode_shared(&buf).unwrap() else {
            panic!("inner expected")
        };
        let base = buf.as_ref().as_ptr() as usize;
        let end = base + buf.len();
        for key in &i.keys {
            let p = key.as_ref().as_ptr() as usize;
            assert!(
                p >= base && p + key.len() <= end,
                "separator copied instead of sliced"
            );
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[0x00, 0x01]).is_err());
        let mut good = Node::Leaf(LeafNode::empty_root()).encode();
        good.truncate(good.len() - 1);
        // Truncating an empty root leaves a still-valid prefix only if the
        // cell count survived; either way decode must not panic.
        let _ = Node::decode(&good);
    }

    #[test]
    fn into_leaf_and_inner_guards() {
        let leaf = Node::Leaf(LeafNode::empty_root());
        assert!(leaf.clone().into_leaf().is_ok());
        assert!(leaf.into_inner().is_err());
        assert_eq!(Node::Leaf(LeafNode::empty_root()).height(), 0);
    }
}
