//! Tree-node representation and its binary encoding.
//!
//! Every node of a YDBT is stored as one key-value pair in the transactional
//! key-value store: the key is the node's [`ObjectId`](yesquel_common::ObjectId)
//! and the value is the encoding defined here.  Nodes carry their **fence
//! interval** `[lower, upper)` — the range of keys the node is responsible
//! for — which is what lets clients detect that a cached path is stale (the
//! "back-down search" of the paper): if a search for key `k` arrives at a
//! node whose fence interval does not contain `k`, the client's cache was
//! out of date and the search backs up.
//!
//! ## Page layout: the cell-offset directory
//!
//! Nodes are encoded as **directory pages** (the design SQLite's b-tree
//! pages and LMDB use): a fixed header, a table of `u32` cell offsets, and
//! then the cell payloads.  The k-th cell is addressable in O(1) through the
//! directory, so a point probe binary-searches the encoded page directly —
//! no cell is decoded except the O(log n) keys the search actually compares.
//!
//! ```text
//! Leaf page                            Inner page
//! +----------------------------+      +----------------------------+
//! | 0  tag (0xd3)              |      | 0  tag (0xd4)              |
//! | 1  flags                   |      | 1  flags                   |
//! | 2  next sibling oid (8B)   |      | 2  height (1B)             |
//! | 10 ncells (u32)            |      | 3  nchildren (u32)         |
//! | 14 directory:              |      | 7  children: nchildren ×   |
//! |    ncells × u32 offset ----+--+   |    u64 child oid           |
//! +----------------------------+  |   +----------------------------+
//! | lower fence key (if any)   |  |   | directory: (nchildren-1)   |
//! | upper fence key (if any)   |  |   |   × u32 separator offset   |
//! +----------------------------+  |   +----------------------------+
//! | cell 0: klen k vlen v   <--+--+   | lower/upper fence keys     |
//! | cell 1: klen k vlen v      |      +----------------------------+
//! | ...                        |      | sep 0: klen k              |
//! +----------------------------+      | ...                        |
//!                                     +----------------------------+
//! ```
//!
//! `flags` packs the leaf's has-next bit (bit 0), the kind of each fence
//! bound (bits 1–2 lower, bits 3–4 upper: 0 = −∞, 1 = key, 2 = +∞), and a
//! has-replicas bit (bit 5).  When bit 5 is set, a **replica set** — a `u8`
//! count followed by that many `u64` replica oids — sits between the fence
//! keys and the cell payloads: the node is additionally stored, byte for
//! byte, under each listed oid (read-any/write-all replication; see
//! `replica.rs`).  Pages written before replication existed have bit 5
//! clear and parse unchanged.
//! Offsets are absolute page offsets; the directory is validated once at
//! view-construction time (in range, monotonically increasing) and each
//! cell decode is bounded to its directory slot, so a corrupt page yields
//! [`Error::Corruption`] — never a panic or an out-of-bounds read.
//!
//! ## Lazy views: decode one cell, not sixty-four
//!
//! The read path never materialises a node.  [`LeafView`] and [`InnerView`]
//! wrap the fetched [`Bytes`] and answer `find`, `lower_bound`, `child_for`
//! and `fence_contains` by binary search over the directory with **zero
//! per-cell allocation**; values and keys are handed out as `Bytes` slices
//! of the page (reference-count bumps).  The mutable [`LeafNode`] /
//! [`InnerNode`] structs are materialised from a view only when a write
//! actually mutates the node — and even then their keys are `Bytes` slices
//! of the page, so materialisation allocates the two `Vec`s and nothing
//! per cell.

use bytes::Bytes;
use yesquel_common::encoding::{Reader, Writer};
use yesquel_common::{Error, Oid, Result};

/// One endpoint of a fence interval.
///
/// Keys are held as [`Bytes`] so that cloning a bound (which splits do
/// repeatedly when rebuilding fences) is a reference-count bump, and so that
/// decoded bounds can share the node's backing buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// Below every key.
    NegInf,
    /// An actual key.
    Key(Bytes),
    /// Above every key.
    PosInf,
}

impl Bound {
    /// A key bound copied from a slice (convenience for construction sites
    /// that do not hold shared bytes).
    pub fn key(k: &[u8]) -> Bound {
        Bound::Key(Bytes::copy_from_slice(k))
    }

    /// True if `key` is ≥ this bound when used as a lower bound.
    pub fn le_key(&self, key: &[u8]) -> bool {
        match self {
            Bound::NegInf => true,
            Bound::Key(k) => &k[..] <= key,
            Bound::PosInf => false,
        }
    }

    /// True if `key` is < this bound when used as an upper bound.
    pub fn gt_key(&self, key: &[u8]) -> bool {
        match self {
            Bound::NegInf => false,
            Bound::Key(k) => key < &k[..],
            Bound::PosInf => true,
        }
    }

    fn kind_bits(&self) -> u8 {
        match self {
            Bound::NegInf => 0,
            Bound::Key(_) => 1,
            Bound::PosInf => 2,
        }
    }
}

/// Returns true if `key` lies in the fence interval `[lower, upper)`.
pub fn fence_contains(lower: &Bound, upper: &Bound, key: &[u8]) -> bool {
    lower.le_key(key) && upper.gt_key(key)
}

// ---------------------------------------------------------------------------
// Page constants
// ---------------------------------------------------------------------------

const LEAF_TAG: u8 = 0xd3;
const INNER_TAG: u8 = 0xd4;

/// Leaf header: tag(1) flags(1) next(8) ncells(4).
const LEAF_DIR_START: usize = 14;
/// Inner header: tag(1) flags(1) height(1) nchildren(4).
const INNER_CHILDREN_START: usize = 7;

const FLAG_HAS_NEXT: u8 = 0b1;
const FLAG_HAS_REPLICAS: u8 = 0b10_0000;

fn fence_flags(lower: &Bound, upper: &Bound) -> u8 {
    (lower.kind_bits() << 1) | (upper.kind_bits() << 3)
}

// ---------------------------------------------------------------------------
// Fence references (positions within a page, no allocation)
// ---------------------------------------------------------------------------

/// A fence bound as stored in a page: either infinite, or a key identified
/// by its byte range within the page.  `Copy`, so cloning a view copies two
/// words instead of bumping extra reference counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FenceRef {
    NegInf,
    Key { start: u32, len: u32 },
    PosInf,
}

impl FenceRef {
    fn key_slice<'p>(&self, page: &'p [u8]) -> Option<&'p [u8]> {
        match self {
            FenceRef::Key { start, len } => Some(&page[*start as usize..(*start + *len) as usize]),
            _ => None,
        }
    }

    fn le_key(&self, page: &[u8], key: &[u8]) -> bool {
        match self {
            FenceRef::NegInf => true,
            FenceRef::Key { .. } => self.key_slice(page).expect("key fence") <= key,
            FenceRef::PosInf => false,
        }
    }

    fn gt_key(&self, page: &[u8], key: &[u8]) -> bool {
        match self {
            FenceRef::NegInf => false,
            FenceRef::Key { .. } => key < self.key_slice(page).expect("key fence"),
            FenceRef::PosInf => true,
        }
    }

    fn to_bound(self, page: &Bytes) -> Bound {
        match self {
            FenceRef::NegInf => Bound::NegInf,
            FenceRef::Key { start, len } => {
                Bound::Key(page.slice(start as usize..(start + len) as usize))
            }
            FenceRef::PosInf => Bound::PosInf,
        }
    }

    /// Reads one fence of the given kind bits at the reader's position.
    /// `base` is the reader's offset from the start of the page.
    fn read(kind: u8, r: &mut Reader<'_>, base: usize) -> Result<FenceRef> {
        match kind {
            0 => Ok(FenceRef::NegInf),
            1 => {
                let k = r.bytes()?;
                let end = base + r.pos();
                Ok(FenceRef::Key {
                    start: (end - k.len()) as u32,
                    len: k.len() as u32,
                })
            }
            2 => Ok(FenceRef::PosInf),
            b => Err(Error::Corruption(format!("bad fence kind {b}"))),
        }
    }
}

fn dir_entry(page: &[u8], dir_start: usize, i: usize) -> usize {
    let at = dir_start + 4 * i;
    u32::from_be_bytes(page[at..at + 4].try_into().expect("validated")) as usize
}

/// Validates a cell-offset directory: every entry must point past the end of
/// the fixed region (`floor`), lie inside the page, and be monotonically
/// increasing.  O(n) over the raw `u32` table — no cell is decoded.
fn check_directory(page: &[u8], dir_start: usize, n: usize, floor: usize) -> Result<()> {
    let mut prev = floor;
    for i in 0..n {
        let off = dir_entry(page, dir_start, i);
        if off < prev || off >= page.len() {
            return Err(Error::Corruption(format!(
                "directory offset {off} of cell {i} out of range [{prev}, {})",
                page.len()
            )));
        }
        prev = off + 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// LeafView
// ---------------------------------------------------------------------------

/// A lazy, zero-materialisation view of an encoded leaf page.
///
/// Construction validates the header and the offset directory (O(ncells)
/// over the raw `u32` table); every accessor afterwards decodes **only the
/// cells it touches**, bounded to their directory slots, and returns keys
/// and values as `Bytes` slices of the page.  Cloning a view is one
/// reference-count bump plus a few words.
#[derive(Debug, Clone)]
pub struct LeafView {
    page: Bytes,
    n: usize,
    next: Option<Oid>,
    lower: FenceRef,
    upper: FenceRef,
    /// Page offset and count of the replica-oid array (0, 0 when absent).
    rep_start: u32,
    rep_n: u8,
}

impl LeafView {
    /// Parses `page` as a leaf, validating the header and directory.
    pub fn parse(page: Bytes) -> Result<LeafView> {
        let buf: &[u8] = &page;
        if buf.len() < LEAF_DIR_START {
            return Err(Error::Corruption(format!(
                "leaf page too short: {} bytes",
                buf.len()
            )));
        }
        if buf[0] != LEAF_TAG {
            return Err(Error::Corruption(format!("bad leaf tag 0x{:02x}", buf[0])));
        }
        let flags = buf[1];
        if flags >> 6 != 0 {
            return Err(Error::Corruption(format!("bad leaf flags 0x{flags:02x}")));
        }
        let next = if flags & FLAG_HAS_NEXT != 0 {
            Some(u64::from_be_bytes(buf[2..10].try_into().expect("len ok")))
        } else {
            None
        };
        let n = u32::from_be_bytes(buf[10..14].try_into().expect("len ok")) as usize;
        let dir_end = LEAF_DIR_START
            .checked_add(4usize.saturating_mul(n))
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| {
                Error::Corruption(format!("leaf directory of {n} cells overflows page"))
            })?;
        let mut r = Reader::new(&buf[dir_end..]);
        let lower = FenceRef::read((flags >> 1) & 0b11, &mut r, dir_end)?;
        let upper = FenceRef::read((flags >> 3) & 0b11, &mut r, dir_end)?;
        let (rep_start, rep_n) = read_replica_header(flags, &mut r, dir_end)?;
        let cells_start = dir_end + r.pos();
        check_directory(buf, LEAF_DIR_START, n, cells_start)?;
        Ok(LeafView {
            page,
            n,
            next,
            lower,
            upper,
            rep_start,
            rep_n,
        })
    }

    /// True if the page carries a replica set (cheap flag check).
    pub fn has_replicas(&self) -> bool {
        self.rep_n != 0
    }

    /// The replica oids listed in the page (empty for most nodes).
    pub fn replicas(&self) -> Vec<Oid> {
        read_replica_oids(&self.page, self.rep_start, self.rep_n)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the leaf has no cells.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Right sibling, if any.
    pub fn next(&self) -> Option<Oid> {
        self.next
    }

    /// True if `key` is within this leaf's fence interval.
    pub fn fence_contains(&self, key: &[u8]) -> bool {
        self.lower.le_key(&self.page, key) && self.upper.gt_key(&self.page, key)
    }

    /// True if this leaf's upper fence is strictly below `key`, i.e. a right
    /// sibling could still hold keys `< key`.  Bounded cursors use this to
    /// stop at the end of their range without fetching the next leaf.
    pub fn upper_fence_below(&self, key: &[u8]) -> bool {
        match &self.upper {
            FenceRef::NegInf => true,
            FenceRef::Key { .. } => self.upper.key_slice(&self.page).expect("key fence") < key,
            FenceRef::PosInf => false,
        }
    }

    /// The byte range of cell `i` within the page: its directory slot, ending
    /// where the next cell starts (or at the end of the page for the last).
    fn slot(&self, i: usize) -> (usize, usize) {
        let start = dir_entry(&self.page, LEAF_DIR_START, i);
        let end = if i + 1 < self.n {
            dir_entry(&self.page, LEAF_DIR_START, i + 1)
        } else {
            self.page.len()
        };
        (start, end)
    }

    /// Key and value ranges of cell `i`, bounds-checked against its slot.
    fn cell_ranges(&self, i: usize) -> Result<(std::ops::Range<usize>, std::ops::Range<usize>)> {
        debug_assert!(i < self.n);
        let (start, end) = self.slot(i);
        let mut r = Reader::new(&self.page[start..end]);
        let k = r.bytes()?;
        let key_end = start + r.pos();
        let key_range = key_end - k.len()..key_end;
        let v = r.bytes()?;
        let val_end = start + r.pos();
        Ok((key_range, val_end - v.len()..val_end))
    }

    /// The key of cell `i`, borrowed from the page (no refcount traffic —
    /// this is what the binary searches compare against).
    fn key_at(&self, i: usize) -> Result<&[u8]> {
        let (start, end) = self.slot(i);
        let mut r = Reader::new(&self.page[start..end]);
        let k = r.bytes()?;
        Ok(k)
    }

    /// Cell `i` as borrowed slices of the page.
    pub fn cell(&self, i: usize) -> Result<(&[u8], &[u8])> {
        let (kr, vr) = self.cell_ranges(i)?;
        Ok((&self.page[kr], &self.page[vr]))
    }

    /// Cell `i` as zero-copy `Bytes` slices of the page (what cursors
    /// yield: holding one keeps the page alive, copies nothing).
    pub fn cell_bytes(&self, i: usize) -> Result<(Bytes, Bytes)> {
        let (kr, vr) = self.cell_ranges(i)?;
        Ok((self.page.slice(kr), self.page.slice(vr)))
    }

    /// Index of the first cell with key ≥ `key` — an O(log n) binary search
    /// over the directory that decodes only the keys it compares.
    pub fn lower_bound(&self, key: &[u8]) -> Result<usize> {
        let (mut lo, mut hi) = (0usize, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid)? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Looks up `key`, returning its value as a zero-copy slice of the page.
    pub fn find(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let i = self.lower_bound(key)?;
        if i >= self.n {
            return Ok(None);
        }
        let (kr, vr) = self.cell_ranges(i)?;
        if &self.page[kr] != key {
            return Ok(None);
        }
        Ok(Some(self.page.slice(vr)))
    }

    /// Materialises a mutable [`LeafNode`].  Cell keys and values are
    /// `Bytes` slices of the page — the only fresh allocations are the two
    /// `Vec`s, nothing per cell is copied.
    pub fn to_leaf_node(&self) -> Result<LeafNode> {
        let mut cells = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let (kr, vr) = self.cell_ranges(i)?;
            cells.push((self.page.slice(kr), self.page.slice(vr)));
        }
        Ok(LeafNode {
            lower: self.lower.to_bound(&self.page),
            upper: self.upper.to_bound(&self.page),
            cells,
            next: self.next,
            replicas: self.replicas(),
        })
    }
}

/// Reads the replica-set header (count + oid array) if `flags` says one is
/// present, returning the page offset of the oid array and the count.
fn read_replica_header(flags: u8, r: &mut Reader<'_>, base: usize) -> Result<(u32, u8)> {
    if flags & FLAG_HAS_REPLICAS == 0 {
        return Ok((0, 0));
    }
    let count = r.u8()?;
    if count == 0 {
        return Err(Error::Corruption("replica flag set but count is 0".into()));
    }
    let start = base + r.pos();
    for _ in 0..count {
        r.u64()?;
    }
    Ok((start as u32, count))
}

/// Writes the replica-set header (count + oid array) if `replicas` is
/// non-empty.  The count must fit the `u8` header; config caps the replica
/// factor far below that.
fn write_replicas(w: &mut Writer, replicas: &[Oid]) {
    if replicas.is_empty() {
        return;
    }
    assert!(replicas.len() <= u8::MAX as usize, "replica set too large");
    w.u8(replicas.len() as u8);
    for oid in replicas {
        w.u64(*oid);
    }
}

/// Decodes the `u64` replica oids at `start` (already bounds-checked at
/// parse time).
fn read_replica_oids(page: &[u8], start: u32, n: u8) -> Vec<Oid> {
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let at = start as usize + 8 * i;
        out.push(u64::from_be_bytes(
            page[at..at + 8].try_into().expect("validated"),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// InnerView
// ---------------------------------------------------------------------------

/// A lazy view of an encoded inner page.
///
/// Child oids live in a fixed-width array (O(1) access); separator keys sit
/// behind their own offset directory, so `child_for` is an O(log n) binary
/// search decoding only the separators it compares.  This is the type the
/// client cache stores: cloning it is one reference-count bump.
#[derive(Debug, Clone)]
pub struct InnerView {
    page: Bytes,
    /// Number of children (= separators + 1).
    n: usize,
    height: u8,
    dir_start: usize,
    lower: FenceRef,
    upper: FenceRef,
    /// Page offset and count of the replica-oid array (0, 0 when absent).
    rep_start: u32,
    rep_n: u8,
}

impl InnerView {
    /// Parses `page` as an inner node, validating the header and directory.
    pub fn parse(page: Bytes) -> Result<InnerView> {
        let buf: &[u8] = &page;
        if buf.len() < INNER_CHILDREN_START {
            return Err(Error::Corruption(format!(
                "inner page too short: {} bytes",
                buf.len()
            )));
        }
        if buf[0] != INNER_TAG {
            return Err(Error::Corruption(format!("bad inner tag 0x{:02x}", buf[0])));
        }
        let flags = buf[1];
        if flags >> 6 != 0 || flags & FLAG_HAS_NEXT != 0 {
            return Err(Error::Corruption(format!("bad inner flags 0x{flags:02x}")));
        }
        let height = buf[2];
        let n = u32::from_be_bytes(buf[3..7].try_into().expect("len ok")) as usize;
        if n == 0 {
            return Err(Error::Corruption("inner node with no children".into()));
        }
        let dir_start = INNER_CHILDREN_START
            .checked_add(8usize.saturating_mul(n))
            .ok_or_else(|| Error::Corruption("child array overflows".into()))?;
        let dir_end = dir_start
            .checked_add(4usize.saturating_mul(n - 1))
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| {
                Error::Corruption(format!("inner node of {n} children overflows page"))
            })?;
        let mut r = Reader::new(&buf[dir_end..]);
        let lower = FenceRef::read((flags >> 1) & 0b11, &mut r, dir_end)?;
        let upper = FenceRef::read((flags >> 3) & 0b11, &mut r, dir_end)?;
        let (rep_start, rep_n) = read_replica_header(flags, &mut r, dir_end)?;
        let keys_start = dir_end + r.pos();
        check_directory(buf, dir_start, n - 1, keys_start)?;
        Ok(InnerView {
            page,
            n,
            height,
            dir_start,
            lower,
            upper,
            rep_start,
            rep_n,
        })
    }

    /// True if the page carries a replica set (cheap flag check).
    pub fn has_replicas(&self) -> bool {
        self.rep_n != 0
    }

    /// The replica oids listed in the page (empty for most nodes).
    pub fn replicas(&self) -> Vec<Oid> {
        read_replica_oids(&self.page, self.rep_start, self.rep_n)
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the node has no children (never the case for a valid node).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Height above the leaves (1 = children are leaves).
    pub fn height(&self) -> u8 {
        self.height
    }

    /// True if `key` is within this node's fence interval.
    pub fn fence_contains(&self, key: &[u8]) -> bool {
        self.lower.le_key(&self.page, key) && self.upper.gt_key(&self.page, key)
    }

    /// The `i`-th child oid — O(1) from the fixed-width array.
    pub fn child(&self, i: usize) -> Oid {
        debug_assert!(i < self.n);
        let at = INNER_CHILDREN_START + 8 * i;
        u64::from_be_bytes(self.page[at..at + 8].try_into().expect("validated"))
    }

    /// The leftmost child (used when descending for the smallest key).
    pub fn first_child(&self) -> Oid {
        self.child(0)
    }

    /// Separator key `j`, borrowed from the page.
    fn key_at(&self, j: usize) -> Result<&[u8]> {
        let start = dir_entry(&self.page, self.dir_start, j);
        let end = if j + 1 < self.n - 1 {
            dir_entry(&self.page, self.dir_start, j + 1)
        } else {
            self.page.len()
        };
        let mut r = Reader::new(&self.page[start..end]);
        r.bytes()
    }

    /// Index of the child responsible for `key` — O(log n) binary search
    /// over the separator directory.
    pub fn child_index(&self, key: &[u8]) -> Result<usize> {
        let (mut lo, mut hi) = (0usize, self.n - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.key_at(mid)? <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Object id of the child responsible for `key`.
    pub fn child_for(&self, key: &[u8]) -> Result<Oid> {
        Ok(self.child(self.child_index(key)?))
    }

    /// Materialises a mutable [`InnerNode`]; separator keys are `Bytes`
    /// slices of the page.
    pub fn to_inner_node(&self) -> Result<InnerNode> {
        let mut children = Vec::with_capacity(self.n);
        for i in 0..self.n {
            children.push(self.child(i));
        }
        let mut keys = Vec::with_capacity(self.n - 1);
        for j in 0..self.n - 1 {
            let k = self.key_at(j)?;
            let start = k.as_ptr() as usize - self.page.as_ref().as_ptr() as usize;
            keys.push(self.page.slice(start..start + k.len()));
        }
        Ok(InnerNode {
            lower: self.lower.to_bound(&self.page),
            upper: self.upper.to_bound(&self.page),
            keys,
            children,
            height: self.height,
            replicas: self.replicas(),
        })
    }
}

/// A parsed-but-not-materialised node: what the fetch path hands back.
#[derive(Debug, Clone)]
pub enum NodeView {
    /// Leaf page view.
    Leaf(LeafView),
    /// Inner page view.
    Inner(InnerView),
}

impl NodeView {
    /// Parses a fetched page into the appropriate view, dispatching on the
    /// tag byte.
    pub fn parse(page: Bytes) -> Result<NodeView> {
        match page.first() {
            Some(&LEAF_TAG) => Ok(NodeView::Leaf(LeafView::parse(page)?)),
            Some(&INNER_TAG) => Ok(NodeView::Inner(InnerView::parse(page)?)),
            Some(&t) => Err(Error::Corruption(format!("bad node tag 0x{t:02x}"))),
            None => Err(Error::Corruption("empty node page".into())),
        }
    }

    /// Height above the leaves (0 for a leaf).
    pub fn height(&self) -> u8 {
        match self {
            NodeView::Leaf(_) => 0,
            NodeView::Inner(i) => i.height(),
        }
    }

    /// True if the page carries a replica set (cheap flag check).
    pub fn has_replicas(&self) -> bool {
        match self {
            NodeView::Leaf(l) => l.has_replicas(),
            NodeView::Inner(i) => i.has_replicas(),
        }
    }

    /// The replica oids listed in the page (empty for most nodes).
    pub fn replicas(&self) -> Vec<Oid> {
        match self {
            NodeView::Leaf(l) => l.replicas(),
            NodeView::Inner(i) => i.replicas(),
        }
    }
}

// ---------------------------------------------------------------------------
// Materialised (mutable) nodes — the write path's working representation
// ---------------------------------------------------------------------------

/// A leaf node: sorted cells of `(key, value)` plus a pointer to the right
/// sibling (used by range scans and by the stale-cache recovery path).
///
/// Keys and values are [`Bytes`]: a leaf materialised from a [`LeafView`]
/// shares the fetched page (no per-cell copy), and splitting moves cells by
/// reference-count bump.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafNode {
    /// Inclusive lower fence.
    pub lower: Bound,
    /// Exclusive upper fence.
    pub upper: Bound,
    /// Sorted cells.
    pub cells: Vec<(Bytes, Bytes)>,
    /// Right sibling, if any.
    pub next: Option<Oid>,
    /// Oids of the node's replicas (read-any/write-all; empty = unreplicated).
    pub replicas: Vec<Oid>,
}

impl LeafNode {
    /// An empty leaf responsible for the whole key space (a new tree's root).
    pub fn empty_root() -> Self {
        LeafNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            cells: Vec::new(),
            next: None,
            replicas: Vec::new(),
        }
    }

    /// True if `key` is within this leaf's fence interval.
    pub fn fence_contains(&self, key: &[u8]) -> bool {
        fence_contains(&self.lower, &self.upper, key)
    }

    /// Looks up `key` among the cells.
    pub fn find(&self, key: &[u8]) -> Option<&Bytes> {
        self.cells
            .binary_search_by(|(k, _)| k.as_ref().cmp(key))
            .ok()
            .map(|i| &self.cells[i].1)
    }

    /// Index of the first cell with key ≥ `key`.
    pub fn lower_bound(&self, key: &[u8]) -> usize {
        self.cells.partition_point(|(k, _)| &k[..] < key)
    }

    /// Inserts or replaces a cell; returns true if an existing cell was
    /// replaced.
    ///
    /// Takes the key by reference and only allocates when a new cell is
    /// actually inserted: replacing an existing cell — the common case for
    /// update-heavy workloads — is allocation-free.
    pub fn insert_cell(&mut self, key: &[u8], value: Bytes) -> bool {
        match self.cells.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
            Ok(i) => {
                self.cells[i].1 = value;
                true
            }
            Err(i) => {
                self.cells.insert(i, (Bytes::copy_from_slice(key), value));
                false
            }
        }
    }

    /// Removes the cell with `key`; returns true if it existed.
    pub fn remove_cell(&mut self, key: &[u8]) -> bool {
        match self.cells.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
            Ok(i) => {
                self.cells.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the leaf has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// An inner node: `children[i]` is responsible for keys in
/// `[keys[i-1], keys[i])`, with the node's own fences standing in at the
/// ends (`keys.len() == children.len() - 1`).
///
/// Separator keys are [`Bytes`]: materialised inner nodes share their
/// backing page (no per-key allocation) and splitting an inner node moves
/// and clones separators by reference-count bump instead of `Vec` copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InnerNode {
    /// Inclusive lower fence.
    pub lower: Bound,
    /// Exclusive upper fence.
    pub upper: Bound,
    /// Separator keys.
    pub keys: Vec<Bytes>,
    /// Child object ids.
    pub children: Vec<Oid>,
    /// Height above the leaves (1 = children are leaves).
    pub height: u8,
    /// Oids of the node's replicas (read-any/write-all; empty = unreplicated).
    pub replicas: Vec<Oid>,
}

impl InnerNode {
    /// True if `key` is within this node's fence interval.
    pub fn fence_contains(&self, key: &[u8]) -> bool {
        fence_contains(&self.lower, &self.upper, key)
    }

    /// Index of the child responsible for `key`.
    pub fn child_index(&self, key: &[u8]) -> usize {
        self.keys.partition_point(|k| &k[..] <= key)
    }

    /// Object id of the child responsible for `key`.
    pub fn child_for(&self, key: &[u8]) -> Oid {
        self.children[self.child_index(key)]
    }

    /// Inserts separator `key` and child `oid` immediately after child
    /// `after_index` (the child that was split).
    pub fn insert_child_after(&mut self, after_index: usize, key: Bytes, oid: Oid) {
        debug_assert!(after_index < self.children.len());
        self.keys.insert(after_index, key);
        self.children.insert(after_index + 1, oid);
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True if the node has no children (never the case for a valid node).
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// The leftmost child (used when descending for the smallest key).
    pub fn first_child(&self) -> Oid {
        self.children[0]
    }
}

/// A tree node, as stored in the key-value store.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Leaf node.
    Leaf(LeafNode),
    /// Inner node.
    Inner(InnerNode),
}

impl Node {
    /// Height above the leaves (0 for a leaf).
    pub fn height(&self) -> u8 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner(i) => i.height,
        }
    }

    /// Returns the leaf, or an error if this is an inner node.
    pub fn into_leaf(self) -> Result<LeafNode> {
        match self {
            Node::Leaf(l) => Ok(l),
            Node::Inner(_) => Err(Error::Corruption("expected leaf, found inner node".into())),
        }
    }

    /// Returns the inner node, or an error if this is a leaf.
    pub fn into_inner(self) -> Result<InnerNode> {
        match self {
            Node::Inner(i) => Ok(i),
            Node::Leaf(_) => Err(Error::Corruption("expected inner node, found leaf".into())),
        }
    }

    /// Serializes the node into its directory-page encoding (see the module
    /// docs for the layout).  Cell offsets are backpatched into the
    /// directory as the payloads are written.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Node::Leaf(l) => {
                let mut w = Writer::with_capacity(
                    LEAF_DIR_START + l.cells.len() * 8 + 64, // rough guess, Vec grows as needed
                );
                w.u8(LEAF_TAG);
                let mut flags = fence_flags(&l.lower, &l.upper);
                if l.next.is_some() {
                    flags |= FLAG_HAS_NEXT;
                }
                if !l.replicas.is_empty() {
                    flags |= FLAG_HAS_REPLICAS;
                }
                w.u8(flags);
                w.u64(l.next.unwrap_or(0));
                w.u32(l.cells.len() as u32);
                let dir_pos = w.len();
                for _ in &l.cells {
                    w.u32(0);
                }
                if let Bound::Key(k) = &l.lower {
                    w.bytes(k);
                }
                if let Bound::Key(k) = &l.upper {
                    w.bytes(k);
                }
                write_replicas(&mut w, &l.replicas);
                for (i, (k, v)) in l.cells.iter().enumerate() {
                    let off = w.len() as u32;
                    w.u32_at(dir_pos + 4 * i, off);
                    w.bytes(k);
                    w.bytes(v);
                }
                w.finish()
            }
            Node::Inner(inner) => {
                let mut w =
                    Writer::with_capacity(INNER_CHILDREN_START + inner.children.len() * 12 + 64);
                w.u8(INNER_TAG);
                let mut flags = fence_flags(&inner.lower, &inner.upper);
                if !inner.replicas.is_empty() {
                    flags |= FLAG_HAS_REPLICAS;
                }
                w.u8(flags);
                w.u8(inner.height);
                w.u32(inner.children.len() as u32);
                for c in &inner.children {
                    w.u64(*c);
                }
                let dir_pos = w.len();
                for _ in &inner.keys {
                    w.u32(0);
                }
                if let Bound::Key(k) = &inner.lower {
                    w.bytes(k);
                }
                if let Bound::Key(k) = &inner.upper {
                    w.bytes(k);
                }
                write_replicas(&mut w, &inner.replicas);
                for (j, k) in inner.keys.iter().enumerate() {
                    let off = w.len() as u32;
                    w.u32_at(dir_pos + 4 * j, off);
                    w.bytes(k);
                }
                w.finish()
            }
        }
    }

    /// The node's replica set (shared accessor over both variants).
    pub fn replicas(&self) -> &[Oid] {
        match self {
            Node::Leaf(l) => &l.replicas,
            Node::Inner(i) => &i.replicas,
        }
    }

    /// Mutable access to the node's replica set.
    pub fn replicas_mut(&mut self) -> &mut Vec<Oid> {
        match self {
            Node::Leaf(l) => &mut l.replicas,
            Node::Inner(i) => &mut i.replicas,
        }
    }

    /// Decodes a node from a bare slice.  Copies the buffer once and then
    /// shares it; callers that already hold [`Bytes`] (everything on the
    /// fetch path) should use [`Node::decode_shared`] instead.
    pub fn decode(buf: &[u8]) -> Result<Node> {
        Self::decode_shared(&Bytes::copy_from_slice(buf))
    }

    /// Decodes and **materialises** a node, sharing the backing buffer: cell
    /// keys/values, fence-bound keys and inner separator keys are all slices
    /// of `buf`, never copies.  The read path does not use this — it works
    /// on [`NodeView`]s directly; this is for the write path (which is about
    /// to mutate the node) and for splits.
    pub fn decode_shared(buf: &Bytes) -> Result<Node> {
        match NodeView::parse(buf.clone())? {
            NodeView::Leaf(v) => Ok(Node::Leaf(v.to_leaf_node()?)),
            NodeView::Inner(v) => Ok(Node::Inner(v.to_inner_node()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn v(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn leaf_view(l: &LeafNode) -> LeafView {
        LeafView::parse(Bytes::from(Node::Leaf(l.clone()).encode())).unwrap()
    }

    fn inner_view(i: &InnerNode) -> InnerView {
        InnerView::parse(Bytes::from(Node::Inner(i.clone()).encode())).unwrap()
    }

    #[test]
    fn bound_comparisons() {
        assert!(Bound::NegInf.le_key(b""));
        assert!(!Bound::PosInf.le_key(b"zzz"));
        assert!(Bound::PosInf.gt_key(b"zzz"));
        assert!(!Bound::NegInf.gt_key(b""));
        assert!(Bound::Key(k("m")).le_key(b"m"));
        assert!(Bound::Key(k("m")).le_key(b"z"));
        assert!(!Bound::Key(k("m")).le_key(b"a"));
        assert!(Bound::Key(k("m")).gt_key(b"a"));
        assert!(!Bound::Key(k("m")).gt_key(b"m"));
        assert_eq!(Bound::key(b"m"), Bound::Key(k("m")));
    }

    #[test]
    fn fence_interval_semantics() {
        let lower = Bound::Key(k("b"));
        let upper = Bound::Key(k("f"));
        assert!(fence_contains(&lower, &upper, b"b"));
        assert!(fence_contains(&lower, &upper, b"e"));
        assert!(!fence_contains(&lower, &upper, b"f"));
        assert!(!fence_contains(&lower, &upper, b"a"));
    }

    #[test]
    fn leaf_insert_find_remove() {
        let mut l = LeafNode::empty_root();
        assert!(!l.insert_cell(b"b", v("2")));
        assert!(!l.insert_cell(b"a", v("1")));
        assert!(!l.insert_cell(b"c", v("3")));
        assert!(l.insert_cell(b"b", v("2b"))); // replace
        assert_eq!(l.len(), 3);
        assert_eq!(l.find(b"b"), Some(&v("2b")));
        assert_eq!(l.find(b"z"), None);
        assert_eq!(l.lower_bound(b"b"), 1);
        assert_eq!(l.lower_bound(b"bb"), 2);
        assert!(l.remove_cell(b"a"));
        assert!(!l.remove_cell(b"a"));
        assert_eq!(l.len(), 2);
        // Cells stay sorted.
        let keys: Vec<_> = l.cells.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![k("b"), k("c")]);
    }

    #[test]
    fn inner_child_routing() {
        let inner = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![k("g"), k("p")],
            children: vec![10, 20, 30],
            height: 1,
            replicas: vec![],
        };
        assert_eq!(inner.child_for(b"a"), 10);
        assert_eq!(inner.child_for(b"f"), 10);
        assert_eq!(inner.child_for(b"g"), 20);
        assert_eq!(inner.child_for(b"o"), 20);
        assert_eq!(inner.child_for(b"p"), 30);
        assert_eq!(inner.child_for(b"z"), 30);
        assert_eq!(inner.first_child(), 10);
    }

    #[test]
    fn inner_insert_child_after() {
        let mut inner = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![k("m")],
            children: vec![1, 2],
            height: 1,
            replicas: vec![],
        };
        // Child 0 splits at "f": new right half gets oid 3.
        inner.insert_child_after(0, k("f"), 3);
        assert_eq!(inner.keys, vec![k("f"), k("m")]);
        assert_eq!(inner.children, vec![1, 3, 2]);
        assert_eq!(inner.child_for(b"a"), 1);
        assert_eq!(inner.child_for(b"g"), 3);
        assert_eq!(inner.child_for(b"x"), 2);
    }

    #[test]
    fn node_encode_decode_roundtrip() {
        let leaf = Node::Leaf(LeafNode {
            lower: Bound::Key(k("b")),
            upper: Bound::PosInf,
            cells: vec![(k("b"), v("vb")), (k("c"), v("vc"))],
            next: Some(42),
            replicas: vec![],
        });
        let buf = leaf.encode();
        assert_eq!(Node::decode(&buf).unwrap(), leaf);

        let inner = Node::Inner(InnerNode {
            lower: Bound::NegInf,
            upper: Bound::Key(k("zz")),
            keys: vec![k("g")],
            children: vec![7, 9],
            height: 3,
            replicas: vec![],
        });
        let buf = inner.encode();
        assert_eq!(Node::decode(&buf).unwrap(), inner);

        // Empty leaf (a fresh root) roundtrips too.
        let empty = Node::Leaf(LeafNode::empty_root());
        assert_eq!(Node::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn leaf_view_probes_without_materialising() {
        let mut l = LeafNode {
            lower: Bound::Key(k("c000")),
            upper: Bound::Key(k("c999")),
            cells: Vec::new(),
            next: Some(77),
            replicas: vec![],
        };
        for i in 0..64 {
            l.insert_cell(format!("c{:03}", i * 3).as_bytes(), v("val"));
        }
        let view = leaf_view(&l);
        assert_eq!(view.len(), 64);
        assert_eq!(view.next(), Some(77));
        assert!(view.fence_contains(b"c000"));
        assert!(view.fence_contains(b"c500"));
        assert!(!view.fence_contains(b"c999"));
        assert!(!view.fence_contains(b"b"));
        // Every present key is found; absent keys are not.
        for i in 0..64 {
            let key = format!("c{:03}", i * 3);
            let got = view.find(key.as_bytes()).unwrap();
            assert_eq!(got.as_deref(), Some(&b"val"[..]), "key {key}");
        }
        assert_eq!(view.find(b"c001").unwrap(), None);
        assert_eq!(view.find(b"zzz").unwrap(), None);
        // lower_bound agrees with the materialised node.
        for probe in ["c000", "c004", "c095", "c999", ""] {
            assert_eq!(
                view.lower_bound(probe.as_bytes()).unwrap(),
                l.lower_bound(probe.as_bytes()),
                "probe {probe}"
            );
        }
        // cell() and cell_bytes() agree.
        let (ck, cv) = view.cell(5).unwrap();
        let (bk, bv) = view.cell_bytes(5).unwrap();
        assert_eq!(ck, &bk[..]);
        assert_eq!(cv, &bv[..]);
    }

    #[test]
    fn leaf_view_zero_copy() {
        let leaf = LeafNode {
            lower: Bound::Key(k("b")),
            upper: Bound::PosInf,
            cells: vec![(k("b"), v("value-b")), (k("c"), v("value-c"))],
            next: None,
            replicas: vec![],
        };
        let buf = Bytes::from(Node::Leaf(leaf).encode());
        let view = LeafView::parse(buf.clone()).unwrap();
        let base = buf.as_ref().as_ptr() as usize;
        let end = base + buf.len();
        let inside = |b: &Bytes| {
            let p = b.as_ref().as_ptr() as usize;
            p >= base && p + b.len() <= end
        };
        // find() hands out a slice of the page.
        let found = view.find(b"b").unwrap().unwrap();
        assert!(inside(&found), "value copied instead of sliced");
        // cell_bytes() too.
        let (ck, cv) = view.cell_bytes(1).unwrap();
        assert!(inside(&ck) && inside(&cv), "cell copied instead of sliced");
        // Materialisation slices as well — keys included.
        let node = view.to_leaf_node().unwrap();
        for (key, value) in &node.cells {
            assert!(inside(key) && inside(value), "materialised cell copied");
        }
        if let Bound::Key(bk) = &node.lower {
            assert!(inside(bk), "bound key copied instead of sliced");
        }
    }

    #[test]
    fn inner_view_routes_like_materialised_node() {
        let inner = InnerNode {
            lower: Bound::Key(k("aa")),
            upper: Bound::PosInf,
            keys: (1..64)
                .map(|i| Bytes::from(format!("k{i:03}")))
                .collect::<Vec<_>>(),
            children: (0..64u64).map(|i| 100 + i).collect(),
            height: 2,
            replicas: vec![],
        };
        let view = inner_view(&inner);
        assert_eq!(view.len(), 64);
        assert_eq!(view.height(), 2);
        assert_eq!(view.first_child(), 100);
        for probe in ["", "aa", "k001", "k0015", "k032", "k063", "zz"] {
            assert_eq!(
                view.child_for(probe.as_bytes()).unwrap(),
                inner.child_for(probe.as_bytes()),
                "probe {probe}"
            );
            assert_eq!(
                view.fence_contains(probe.as_bytes()),
                inner.fence_contains(probe.as_bytes()),
                "fence {probe}"
            );
        }
        // Round trip through materialisation.
        assert_eq!(view.to_inner_node().unwrap(), inner);
    }

    #[test]
    fn inner_view_separators_are_slices() {
        let inner = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![k("separator-g"), k("separator-p")],
            children: vec![7, 9, 11],
            height: 1,
            replicas: vec![],
        };
        let buf = Bytes::from(Node::Inner(inner).encode());
        let Node::Inner(i) = Node::decode_shared(&buf).unwrap() else {
            panic!("inner expected")
        };
        let base = buf.as_ref().as_ptr() as usize;
        let end = base + buf.len();
        for key in &i.keys {
            let p = key.as_ref().as_ptr() as usize;
            assert!(
                p >= base && p + key.len() <= end,
                "separator copied instead of sliced"
            );
        }
    }

    #[test]
    fn node_view_dispatch() {
        let leaf = Bytes::from(Node::Leaf(LeafNode::empty_root()).encode());
        assert!(matches!(NodeView::parse(leaf).unwrap(), NodeView::Leaf(_)));
        let inner = Bytes::from(
            Node::Inner(InnerNode {
                lower: Bound::NegInf,
                upper: Bound::PosInf,
                keys: vec![k("m")],
                children: vec![1, 2],
                height: 4,
                replicas: vec![],
            })
            .encode(),
        );
        let view = NodeView::parse(inner).unwrap();
        assert_eq!(view.height(), 4);
        assert!(NodeView::parse(Bytes::new()).is_err());
        assert!(NodeView::parse(Bytes::copy_from_slice(&[0x00, 0x01])).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[0x00, 0x01]).is_err());
        // Truncations of a valid page must error, never panic.
        let good = Node::Leaf(LeafNode {
            lower: Bound::NegInf,
            upper: Bound::Key(k("zz")),
            cells: vec![(k("a"), v("1")), (k("b"), v("2"))],
            next: Some(9),
            replicas: vec![],
        })
        .encode();
        for cut in 0..good.len() {
            let _ = Node::decode(&good[..cut]);
        }
        assert!(Node::decode(&good).is_ok());
    }

    #[test]
    fn parse_rejects_bad_directory() {
        let good = Node::Leaf(LeafNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            cells: vec![(k("a"), v("1")), (k("b"), v("2"))],
            next: None,
            replicas: vec![],
        })
        .encode();
        // Directory entry 0 lives at LEAF_DIR_START; point it past the page.
        let mut bad = good.clone();
        bad[LEAF_DIR_START..LEAF_DIR_START + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(LeafView::parse(Bytes::from(bad)).is_err());
        // Non-monotonic directory (entry 1 before entry 0).
        let mut bad = good.clone();
        let e0 = bad[LEAF_DIR_START..LEAF_DIR_START + 4].to_vec();
        let e1 = bad[LEAF_DIR_START + 4..LEAF_DIR_START + 8].to_vec();
        bad[LEAF_DIR_START..LEAF_DIR_START + 4].copy_from_slice(&e1);
        bad[LEAF_DIR_START + 4..LEAF_DIR_START + 8].copy_from_slice(&e0);
        assert!(LeafView::parse(Bytes::from(bad)).is_err());
        // Overstated cell count overflows the directory region.
        let mut bad = good;
        bad[10..14].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(LeafView::parse(Bytes::from(bad)).is_err());
    }

    #[test]
    fn overlapping_cells_error_on_access() {
        // Two cells; move cell 1's offset to one byte after cell 0's start:
        // the directory stays monotonic and in-range, but cell 0's slot is
        // now a single byte, so decoding it must report corruption.
        let good = Node::Leaf(LeafNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            cells: vec![(k("aaaa"), v("1111")), (k("bbbb"), v("2222"))],
            next: None,
            replicas: vec![],
        })
        .encode();
        let off0 = u32::from_be_bytes(good[LEAF_DIR_START..LEAF_DIR_START + 4].try_into().unwrap());
        let mut bad = good;
        bad[LEAF_DIR_START + 4..LEAF_DIR_START + 8].copy_from_slice(&(off0 + 1).to_be_bytes());
        let view = LeafView::parse(Bytes::from(bad)).unwrap();
        assert!(view.cell(0).is_err(), "overlapping cell decoded");
    }

    #[test]
    fn replica_set_roundtrips_and_stays_pay_as_you_go() {
        // A leaf with replicas roundtrips through encode/parse, the view
        // reports the set without materialising, and probes still work with
        // the replica header between the fences and the cells.
        let leaf = LeafNode {
            lower: Bound::Key(k("b")),
            upper: Bound::Key(k("x")),
            cells: vec![(k("b"), v("vb")), (k("c"), v("vc"))],
            next: Some(42),
            replicas: vec![900, 901, 902],
        };
        let view = leaf_view(&leaf);
        assert!(view.has_replicas());
        assert_eq!(view.replicas(), vec![900, 901, 902]);
        assert_eq!(view.find(b"c").unwrap().as_deref(), Some(&b"vc"[..]));
        assert_eq!(
            Node::decode(&Node::Leaf(leaf.clone()).encode()).unwrap(),
            Node::Leaf(leaf)
        );

        let inner = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![k("m")],
            children: vec![1, 2],
            height: 1,
            replicas: vec![700],
        };
        let view = inner_view(&inner);
        assert!(view.has_replicas());
        assert_eq!(view.replicas(), vec![700]);
        assert_eq!(view.child_for(b"z").unwrap(), 2);
        assert_eq!(
            Node::decode(&Node::Inner(inner.clone()).encode()).unwrap(),
            Node::Inner(inner)
        );

        // Unreplicated pages do not pay a byte for the feature, and a page
        // with the flag set but a zero count is rejected as corrupt.
        let plain = Node::Leaf(LeafNode::empty_root()).encode();
        assert_eq!(plain[1] & 0b10_0000, 0);
        let mut bad = plain;
        bad[1] |= 0b10_0000;
        assert!(LeafView::parse(Bytes::from(bad)).is_err());
    }

    #[test]
    fn into_leaf_and_inner_guards() {
        let leaf = Node::Leaf(LeafNode::empty_root());
        assert!(leaf.clone().into_leaf().is_ok());
        assert!(leaf.into_inner().is_err());
        assert_eq!(Node::Leaf(LeafNode::empty_root()).height(), 0);
    }
}
