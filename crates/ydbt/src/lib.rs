//! YDBT: Yesquel's distributed balanced tree.
//!
//! The storage engine of Yesquel is a balanced search tree whose nodes are
//! spread over the storage servers (Figure 1, box 2 of the paper).  Every
//! SQL table and every secondary index is one such tree.  The tree is built
//! **above** the distributed transactions of the key-value store, so every
//! structural change — splitting a node, moving cells, growing the tree —
//! is simply a transaction; this is the architectural choice the paper
//! contrasts with systems such as F1/Spanner, where the tree-like storage
//! sits *below* the transaction layer.
//!
//! The techniques that make the DBT fast and scalable (and which the
//! ablation experiments in `yesquel-bench` isolate) are:
//!
//! * **client caching of inner nodes** — warm point lookups fetch only the
//!   leaf, so the root's server is not a bottleneck;
//! * **back-down searches** — stale cache entries are detected through
//!   per-node fence intervals and recovered from locally, instead of
//!   restarting at the root;
//! * **delegated splits** — ordinary operations never pay split latency;
//!   a background task performs splits as separate transactions;
//! * **load splits and hot-node placement** — write-heavy hot nodes are
//!   split and the new node is placed on the least loaded server;
//! * **hot-node replica sets** — read-heavy hot nodes are replicated across
//!   servers (read-any/write-all), spreading read load without multiplying
//!   write fan-out on cold nodes.

pub mod alloc;
pub mod cache;
pub mod engine;
pub mod iter;
pub mod load;
pub mod node;
pub mod replica;
pub mod split;
pub mod tree;

pub use alloc::OidAllocator;
pub use cache::NodeCache;
pub use engine::DbtEngine;
pub use iter::{DbtCursor, RawCursor};
pub use load::{HotStats, LoadTracker};
pub use node::{Bound, InnerNode, InnerView, LeafNode, LeafView, Node, NodeView};
pub use replica::{PlacementTracker, ReplicaMap};
pub use split::{SplitReason, SplitRequest};
pub use tree::{prefix_successor, Dbt};
