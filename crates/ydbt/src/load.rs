//! Access-frequency tracking used to decide load splits and hot-node
//! replication.
//!
//! The paper splits nodes not only when they grow too large but also when
//! they become access hot spots ("load splits"), and may place the resulting
//! nodes on lightly-loaded servers; read-mostly hot nodes are instead
//! replicated across servers (read-any/write-all).  This module tracks
//! per-node read and write counts and reports nodes whose combined traffic
//! exceeds the configured threshold — the read/write mix at that moment is
//! what the caller uses to pick between splitting and replicating.
//!
//! The tracker is a bounded, decaying map, not an ever-growing ledger:
//! counts are halved once per *epoch* (a fixed number of recorded accesses)
//! for every epoch an entry goes untouched, and when the map hits its size
//! bound a sweep drops entries that have not been touched recently.  A node
//! that stops being accessed therefore stops being remembered.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use yesquel_common::{Oid, TreeId};

/// Default bound on the number of tracked nodes.
const DEFAULT_MAX_ENTRIES: usize = 65_536;

/// The read/write tally of a node at the moment it crossed the hot
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotStats {
    /// Reads recorded in the current window.
    pub reads: u64,
    /// Writes recorded in the current window.
    pub writes: u64,
}

impl HotStats {
    /// True if the node's traffic is write-heavy (≥ 25% writes): such nodes
    /// are load-split; read-heavy nodes are replicated instead — replicas
    /// would only multiply the write fan-out.
    pub fn write_heavy(&self) -> bool {
        self.writes * 4 >= self.reads + self.writes
    }
}

struct Entry {
    reads: u64,
    writes: u64,
    /// Epoch of the last touch (counts decay for epochs spent untouched).
    epoch: u64,
}

/// Per-node access counters: bounded size, epoch-based decay.
pub struct LoadTracker {
    entries: Mutex<HashMap<(TreeId, Oid), Entry>>,
    threshold: u64,
    max_entries: usize,
    /// Total accesses recorded; `ops / epoch_len` is the current epoch.
    ops: AtomicU64,
    epoch_len: u64,
}

impl LoadTracker {
    /// Creates a tracker that flags nodes after `threshold` accesses within
    /// one window, with default size bound and decay cadence.
    pub fn new(threshold: u64) -> Self {
        let threshold = threshold.max(1);
        // One epoch spans enough traffic for several nodes to reach the
        // threshold, so a steadily-hot node is never decayed below it while
        // cold entries lose half their count per epoch of silence.
        let epoch_len = (threshold * 32).max(1024);
        Self::with_params(threshold, DEFAULT_MAX_ENTRIES, epoch_len)
    }

    /// Creates a tracker with explicit size bound and epoch length (exposed
    /// for tests and tuning; `new` picks sensible defaults).
    pub fn with_params(threshold: u64, max_entries: usize, epoch_len: u64) -> Self {
        LoadTracker {
            entries: Mutex::new(HashMap::new()),
            threshold: threshold.max(1),
            max_entries: max_entries.max(1),
            ops: AtomicU64::new(0),
            epoch_len: epoch_len.max(1),
        }
    }

    /// Records one access to a node and, if the node has just crossed the
    /// hot threshold, returns its read/write tally (the counters reset so
    /// the caller acts once per window).
    pub fn record(&self, tree: TreeId, oid: Oid, write: bool) -> Option<HotStats> {
        let epoch = self.ops.fetch_add(1, Ordering::Relaxed) / self.epoch_len;
        let mut g = self.entries.lock();
        if !g.contains_key(&(tree, oid)) && g.len() >= self.max_entries {
            sweep(&mut g, epoch, self.max_entries);
        }
        let e = g.entry((tree, oid)).or_insert(Entry {
            reads: 0,
            writes: 0,
            epoch,
        });
        if e.epoch < epoch {
            // Halve the counts once per epoch spent untouched.
            let age = (epoch - e.epoch).min(63) as u32;
            e.reads >>= age;
            e.writes >>= age;
            e.epoch = epoch;
        }
        if write {
            e.writes += 1;
        } else {
            e.reads += 1;
        }
        if e.reads + e.writes >= self.threshold {
            let stats = HotStats {
                reads: e.reads,
                writes: e.writes,
            };
            e.reads = 0;
            e.writes = 0;
            Some(stats)
        } else {
            None
        }
    }

    /// Current access count of a node within the window (diagnostics).
    pub fn count(&self, tree: TreeId, oid: Oid) -> u64 {
        self.entries
            .lock()
            .get(&(tree, oid))
            .map(|e| e.reads + e.writes)
            .unwrap_or(0)
    }

    /// Number of tracked nodes (diagnostics; bounded by the size limit).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if no node is currently tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Forgets a node (after it has been split or promoted).
    pub fn forget(&self, tree: TreeId, oid: Oid) {
        self.entries.lock().remove(&(tree, oid));
    }

    /// Clears the whole window.
    pub fn reset(&self) {
        self.entries.lock().clear();
    }

    /// The configured hot threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

/// Frees room in a full map: first drop entries untouched for a full epoch,
/// then (if everything is current) entries from before this epoch, and as a
/// last resort start the window over.  Correctness never depends on the
/// contents — this is an access-frequency heuristic.
fn sweep(g: &mut HashMap<(TreeId, Oid), Entry>, epoch: u64, max_entries: usize) {
    g.retain(|_, e| e.epoch + 1 >= epoch);
    if g.len() >= max_entries {
        g.retain(|_, e| e.epoch >= epoch);
    }
    if g.len() >= max_entries {
        g.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_threshold_fires_once_per_window() {
        let t = LoadTracker::new(3);
        assert!(t.record(1, 7, false).is_none());
        assert!(t.record(1, 7, false).is_none());
        let hot = t.record(1, 7, true).expect("third access crosses");
        assert_eq!(
            hot,
            HotStats {
                reads: 2,
                writes: 1
            }
        );
        // Counter reset: needs three more accesses to fire again.
        assert!(t.record(1, 7, false).is_none());
        assert!(t.record(1, 7, false).is_none());
        assert!(t.record(1, 7, false).is_some());
    }

    #[test]
    fn write_heavy_classification() {
        assert!(HotStats {
            reads: 0,
            writes: 1
        }
        .write_heavy());
        assert!(HotStats {
            reads: 3,
            writes: 1
        }
        .write_heavy());
        assert!(!HotStats {
            reads: 4,
            writes: 1
        }
        .write_heavy());
        assert!(!HotStats {
            reads: 100,
            writes: 0
        }
        .write_heavy());
    }

    #[test]
    fn leaves_are_independent() {
        let t = LoadTracker::new(2);
        assert!(t.record(1, 1, false).is_none());
        assert!(t.record(1, 2, false).is_none());
        assert!(t.record(1, 1, false).is_some());
        assert_eq!(t.count(1, 2), 1);
        t.forget(1, 2);
        assert_eq!(t.count(1, 2), 0);
        t.reset();
        assert_eq!(t.count(1, 1), 0);
    }

    #[test]
    fn threshold_floor_is_one() {
        let t = LoadTracker::new(0);
        assert!(t.record(1, 1, false).is_some());
        assert_eq!(t.threshold(), 1);
    }

    #[test]
    fn counts_decay_per_untouched_epoch() {
        // Epoch length 4: every 4 recorded accesses advance the clock.
        let t = LoadTracker::with_params(100, 1024, 4);
        t.record(1, 7, false);
        t.record(1, 7, false);
        t.record(1, 7, false);
        assert_eq!(t.count(1, 7), 3);
        // 8 accesses elsewhere: two full epochs pass without touching node 7.
        for i in 0..8 {
            t.record(1, 100 + i, false);
        }
        // Next touch first decays 3 >> 2 = 0, then records itself.
        t.record(1, 7, false);
        assert_eq!(t.count(1, 7), 1);
    }

    #[test]
    fn size_bound_holds_under_cold_churn() {
        let t = LoadTracker::with_params(1000, 8, 4);
        for oid in 0..10_000 {
            t.record(1, oid, false);
            assert!(t.len() <= 8, "tracker grew past its bound at oid {oid}");
        }
    }

    #[test]
    fn sweep_keeps_recently_touched_entries() {
        let t = LoadTracker::with_params(1000, 4, 1_000_000);
        // All four slots touched this epoch; a fifth key forces a sweep that
        // cannot evict by staleness, so the window restarts — bounded, and
        // the new entry is tracked.
        for oid in 0..5 {
            t.record(1, oid, false);
        }
        assert!(t.len() <= 4);
        assert_eq!(t.count(1, 4), 1);
    }
}
