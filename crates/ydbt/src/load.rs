//! Access-frequency tracking used to decide load splits.
//!
//! The paper splits nodes not only when they grow too large but also when
//! they become access hot spots ("load splits"), and may place the resulting
//! nodes on lightly-loaded servers.  This module tracks per-leaf access
//! counts over a sliding window and reports leaves whose traffic exceeds the
//! configured threshold.

use std::collections::HashMap;

use parking_lot::Mutex;
use yesquel_common::{Oid, TreeId};

/// Per-leaf access counters.
pub struct LoadTracker {
    counts: Mutex<HashMap<(TreeId, Oid), u64>>,
    threshold: u64,
}

impl LoadTracker {
    /// Creates a tracker that flags leaves after `threshold` accesses within
    /// one window.
    pub fn new(threshold: u64) -> Self {
        LoadTracker {
            counts: Mutex::new(HashMap::new()),
            threshold: threshold.max(1),
        }
    }

    /// Records one access to a leaf and returns true if the leaf has just
    /// crossed the hot threshold (the counter resets so that the caller only
    /// acts once per window).
    pub fn record(&self, tree: TreeId, oid: Oid) -> bool {
        let mut g = self.counts.lock();
        let c = g.entry((tree, oid)).or_insert(0);
        *c += 1;
        if *c >= self.threshold {
            *c = 0;
            true
        } else {
            false
        }
    }

    /// Current access count of a leaf within the window (diagnostics).
    pub fn count(&self, tree: TreeId, oid: Oid) -> u64 {
        *self.counts.lock().get(&(tree, oid)).unwrap_or(&0)
    }

    /// Forgets a leaf (after it has been split).
    pub fn forget(&self, tree: TreeId, oid: Oid) {
        self.counts.lock().remove(&(tree, oid));
    }

    /// Clears the whole window.
    pub fn reset(&self) {
        self.counts.lock().clear();
    }

    /// The configured hot threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_threshold_fires_once_per_window() {
        let t = LoadTracker::new(3);
        assert!(!t.record(1, 7));
        assert!(!t.record(1, 7));
        assert!(t.record(1, 7));
        // Counter reset: needs three more accesses to fire again.
        assert!(!t.record(1, 7));
        assert!(!t.record(1, 7));
        assert!(t.record(1, 7));
    }

    #[test]
    fn leaves_are_independent() {
        let t = LoadTracker::new(2);
        assert!(!t.record(1, 1));
        assert!(!t.record(1, 2));
        assert!(t.record(1, 1));
        assert_eq!(t.count(1, 2), 1);
        t.forget(1, 2);
        assert_eq!(t.count(1, 2), 0);
        t.reset();
        assert_eq!(t.count(1, 1), 0);
    }

    #[test]
    fn threshold_floor_is_one() {
        let t = LoadTracker::new(0);
        assert!(t.record(1, 1));
        assert_eq!(t.threshold(), 1);
    }
}
