//! Tree operations: lookup, insert, delete and the search algorithm with
//! client caching and back-down recovery.
//!
//! Every operation runs inside a caller-supplied key-value transaction
//! ([`Txn`]), so a SQL statement that touches several trees (a table and its
//! secondary indexes, say) is atomic and reads a consistent snapshot.
//!
//! ## The search path
//!
//! A search for key `k` proceeds in two phases:
//!
//! 1. **Cached descent** — starting at the root's well-known object id, the
//!    client walks down using only its cache of inner nodes, picking the
//!    child responsible for `k` at each level.  This costs no RPCs.
//! 2. **Verified descent** — the deepest node reached in phase 1 is fetched
//!    through the transaction.  If its fence interval contains `k`, the
//!    descent continues from it (caching any inner nodes fetched on the
//!    way) until a leaf containing `k` in its fence interval is reached.
//!    If a fetched node's fence interval does **not** contain `k` (or the
//!    node no longer exists in this snapshot), the cache was stale: the
//!    offending entry is invalidated and the search **backs up** one level
//!    and tries again — the paper's "back-down search".  With back-down
//!    disabled the search restarts from the root instead.
//!
//! With a warm cache the common case fetches exactly one node — the leaf —
//! which is what lets Yesquel approach NOSQL key-value latency for point
//! queries.
//!
//! ## Reads never materialise nodes
//!
//! Both phases operate on [`NodeView`]s — lazy views over the encoded pages
//! (see [`crate::node`]).  A warm point read therefore costs one node fetch
//! plus an O(log n) binary search straight over the page bytes; no cell is
//! decoded except the ones the search compares, and nothing is allocated
//! per cell.  Only `insert`/`delete` materialise the destination leaf
//! (into a [`LeafNode`] whose cells are `Bytes` slices of the page), because
//! they are about to mutate and re-encode it.

use std::sync::Arc;

use bytes::Bytes;
use yesquel_common::config::SplitMode;
use yesquel_common::ids::ROOT_OID;
use yesquel_common::obs::trace::{count, span, SpanKind, TraceCounter};
use yesquel_common::{Error, ObjectId, Oid, Result, TreeId};
use yesquel_kv::Txn;

use crate::engine::DbtEngine;
use crate::iter::{DbtCursor, RawCursor};
use crate::node::{LeafNode, LeafView, Node, NodeView};
use crate::replica::put_node_all;
use crate::split::{split_node_in_txn, SplitReason, SplitRequest};

/// Upper bound on the depth of any search path; also the cycle guard for
/// descents through (possibly inconsistent) cached nodes.  A tree with
/// branching factor ≥ 2 of this depth would be astronomically large, so
/// hitting the bound always means a stale or corrupt path.
const MAX_SEARCH_DEPTH: usize = 64;

/// Reads a node page within a transaction and wraps it in a lazy view —
/// no cells are decoded.  Returns `None` if the object has no visible
/// version at the transaction's snapshot.
pub(crate) fn fetch_view(txn: &Txn, tree: TreeId, oid: Oid) -> Result<Option<NodeView>> {
    match txn.get(ObjectId::new(tree, oid))? {
        Some(bytes) => Ok(Some(NodeView::parse(bytes)?)),
        None => Ok(None),
    }
}

/// Follows a leaf's right-sibling pointer, returning the sibling's view.
/// The chain is maintained transactionally, so a dangling pointer or a
/// sibling that is not a leaf means a damaged tree at this snapshot and is
/// reported as corruption.  Shared by cursors and the leaf-chain walk of
/// [`Dbt::count`].
pub(crate) fn fetch_leaf_sibling(txn: &Txn, tree: TreeId, oid: Oid) -> Result<LeafView> {
    match fetch_view(txn, tree, oid)? {
        Some(NodeView::Leaf(l)) => Ok(l),
        Some(NodeView::Inner(_)) => Err(Error::Corruption(format!(
            "leaf sibling pointer {tree}:{oid} refers to an inner node"
        ))),
        None => Err(Error::Corruption(format!(
            "leaf sibling pointer {tree}:{oid} dangles at this snapshot"
        ))),
    }
}

/// Reads and **materialises** a node within a transaction (the write/split
/// path, which is about to mutate it).  Returns `None` if the object has no
/// visible version at the transaction's snapshot.
pub(crate) fn fetch_node(txn: &Txn, tree: TreeId, oid: Oid) -> Result<Option<Node>> {
    match txn.get(ObjectId::new(tree, oid))? {
        // Shared decode: keys, values and bounds of the returned node are
        // Bytes slices of the fetched buffer, not copies.
        Some(bytes) => Ok(Some(Node::decode_shared(&bytes)?)),
        None => Ok(None),
    }
}

/// The leaf that a search arrived at — still a lazy view — together with
/// the root-to-leaf path of object ids used to reach it (needed by
/// synchronous splits).
pub(crate) struct LeafRef {
    pub(crate) path: Vec<Oid>,
    pub(crate) leaf: LeafView,
}

impl LeafRef {
    pub(crate) fn oid(&self) -> Oid {
        *self.path.last().expect("path never empty")
    }
}

/// Returns the smallest byte string strictly greater than every key that
/// starts with `prefix`; `None` means unbounded (the prefix was all `0xff`).
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

/// A handle to one distributed balanced tree.
///
/// Handles are cheap to clone and share the client's engine (cache, load
/// tracker, splitter).
#[derive(Clone)]
pub struct Dbt {
    engine: Arc<DbtEngine>,
    tree: TreeId,
}

impl Dbt {
    pub(crate) fn new(engine: Arc<DbtEngine>, tree: TreeId) -> Self {
        Dbt { engine, tree }
    }

    /// The tree id this handle operates on.
    pub fn tree_id(&self) -> TreeId {
        self.tree
    }

    /// The engine backing this handle.
    pub fn engine(&self) -> &Arc<DbtEngine> {
        &self.engine
    }

    /// Fetches a node for reading, **read-any** style: if the client knows
    /// the node has replicas, it rotates over primary and replicas so read
    /// load spreads across their servers.  A replica with no version at this
    /// snapshot (the set changed, or the promotion postdates the snapshot)
    /// falls back to the primary — under snapshot isolation a replica is
    /// otherwise byte-identical to the primary (see [`crate::replica`]), so
    /// the fallback is the only correctness hook the read path needs.
    fn fetch_view_any(&self, txn: &Txn, oid: Oid, fetches: &mut u64) -> Result<Option<NodeView>> {
        let counters = self.engine.counters();
        let replicas = self.engine.replicas();
        if let Some(roid) = replicas.choose(self.tree, oid) {
            counters.node_fetches.inc();
            count(TraceCounter::NodeFetches, 1);
            *fetches += 1;
            if let Some(view) = fetch_view(txn, self.tree, roid)? {
                counters.replica_reads.inc();
                count(TraceCounter::ReplicaReads, 1);
                return Ok(Some(view));
            }
            replicas.forget(self.tree, oid);
        }
        counters.node_fetches.inc();
        count(TraceCounter::NodeFetches, 1);
        *fetches += 1;
        let view = fetch_view(txn, self.tree, oid)?;
        // Keep the client's replica map in sync with what the primary page
        // says (pages are where replica sets live; the map is just a hint).
        if let Some(v) = &view {
            if v.has_replicas() {
                replicas.learn(self.tree, oid, &v.replicas());
            } else {
                replicas.forget(self.tree, oid);
            }
        }
        Ok(view)
    }

    /// Finds the leaf responsible for `key` at the transaction's snapshot.
    pub(crate) fn find_leaf(&self, txn: &Txn, key: &[u8]) -> Result<LeafRef> {
        let cfg = self.engine.config();
        let counters = self.engine.counters();
        let cache = self.engine.cache();

        // Phase 1: cached descent (no RPCs).  Termination is guaranteed by
        // the depth bound alone — O(depth), unlike a per-step scan of the
        // whole path, which made deep descents O(depth²).  The `child != cur`
        // guard only short-circuits the trivial self-loop a corrupt cache
        // entry could produce; longer cycles run into the depth bound.
        let mut path: Vec<Oid> = vec![ROOT_OID];
        if cfg.cache_inner_nodes {
            while path.len() < MAX_SEARCH_DEPTH {
                let cur = *path.last().expect("path never empty");
                match cache.get(self.tree, cur) {
                    Some(inner) if inner.fence_contains(key) => {
                        match inner.child_for(key) {
                            Ok(child) if child != cur => path.push(child),
                            // A cached page that cannot route (corrupt or
                            // self-referential) is simply not descended
                            // through; phase 2 will verify and invalidate.
                            _ => break,
                        }
                    }
                    _ => break,
                }
            }
        }

        // Phase 2: verified descent.
        let mut idx = path.len() - 1;
        let mut restarts = 0usize;
        let mut fetches = 0u64;
        loop {
            let oid = path[idx];
            let fetched = self.fetch_view_any(txn, oid, &mut fetches)?;
            match fetched {
                Some(NodeView::Leaf(leaf)) if leaf.fence_contains(key) => {
                    if self.engine.stats().obs().timing_on() {
                        counters.descent_fetches.record(fetches);
                    }
                    path.truncate(idx + 1);
                    return Ok(LeafRef { path, leaf });
                }
                Some(NodeView::Inner(inner)) if inner.fence_contains(key) => {
                    let child = inner.child_for(key)?;
                    if cfg.cache_inner_nodes {
                        // The cache stores the view; later hits clone it
                        // (a refcount bump) instead of re-fetching.
                        cache.put(self.tree, oid, inner);
                    }
                    // An inner node that had to be fetched is read traffic
                    // on its server; hot inner nodes (the root above all)
                    // are what replication exists to relieve.
                    self.track_inner_access(oid);
                    path.truncate(idx + 1);
                    path.push(child);
                    idx += 1;
                    if idx >= MAX_SEARCH_DEPTH {
                        return Err(Error::Corruption(format!(
                            "search path in tree {} exceeded depth {MAX_SEARCH_DEPTH}",
                            self.tree
                        )));
                    }
                    continue;
                }
                None if oid == ROOT_OID => {
                    return Err(Error::NotFound(format!(
                        "tree {} has no root node (was it created?)",
                        self.tree
                    )));
                }
                // Stale cache: wrong fence interval, or a node that does not
                // exist at this snapshot.
                _ => {
                    cache.invalidate(self.tree, oid);
                    restarts += 1;
                    counters.search_restarts.inc();
                    if restarts > cfg.max_search_restarts {
                        return Err(Error::Internal(format!(
                            "search for key in tree {} did not converge after {restarts} restarts",
                            self.tree
                        )));
                    }
                    if cfg.back_down_search && idx > 0 {
                        counters.back_downs.inc();
                        idx -= 1;
                        path.truncate(idx + 1);
                    } else {
                        path.clear();
                        path.push(ROOT_OID);
                        idx = 0;
                    }
                }
            }
        }
    }

    /// Finds the leaf for `key` and materialises it for mutation.
    fn find_leaf_mut(&self, txn: &Txn, key: &[u8]) -> Result<(Vec<Oid>, LeafNode)> {
        let lr = self.find_leaf(txn, key)?;
        let leaf = lr.leaf.to_leaf_node()?;
        Ok((lr.path, leaf))
    }

    /// Records an access to a leaf and routes the node to the right remedy
    /// if it just became hot: **write-heavy** hot leaves are load-split
    /// (spreading the key range over servers), **read-heavy** hot leaves are
    /// replicated (spreading the read traffic over copies) when replication
    /// is enabled — replicating a write-heavy node would only multiply its
    /// write fan-out, and splitting a read-heavy node leaves each half's
    /// server as loaded as before when the hot set is small.
    fn track_access(&self, oid: Oid, leaf_len: usize, write: bool) {
        let cfg = self.engine.config();
        let replication = self.engine.replication_enabled();
        if !cfg.load_splits && !replication {
            return;
        }
        let Some(hot) = self.engine.load().record(self.tree, oid, write) else {
            return;
        };
        if replication && !hot.write_heavy() {
            self.engine.request_replicate(self.tree, oid);
        } else if cfg.load_splits && leaf_len >= 2 {
            self.engine.request_split(SplitRequest {
                tree: self.tree,
                oid,
                reason: SplitReason::Load,
            });
        }
    }

    /// Records a fetch of an inner node; a read-hot inner node (the upper
    /// levels of the tree, when caches are cold or churning) is promoted to
    /// a replica set.  Inner nodes are never load-split from here — their
    /// routing load follows their children's, which splitting does not
    /// change.
    fn track_inner_access(&self, oid: Oid) {
        if !self.engine.replication_enabled() {
            return;
        }
        if let Some(hot) = self.engine.load().record(self.tree, oid, false) {
            if !hot.write_heavy() {
                self.engine.request_replicate(self.tree, oid);
            }
        }
    }

    /// Looks up `key`, returning its value if present.
    ///
    /// The returned [`Bytes`] is a zero-copy slice of the fetched leaf
    /// buffer, so holding it keeps the whole encoded leaf (typically a few
    /// KB) alive.  Callers that retain many values long-term should copy
    /// them out (`Bytes::copy_from_slice(&v)`); callers that consume values
    /// immediately — the common case — pay no copy at all.
    pub fn lookup(&self, txn: &Txn, key: &[u8]) -> Result<Option<Bytes>> {
        let _dbt_span = span(SpanKind::Dbt);
        self.engine.counters().lookups.inc();
        let lr = self.find_leaf(txn, key)?;
        self.track_access(lr.oid(), lr.leaf.len(), false);
        lr.leaf.find(key)
    }

    /// Inserts (or replaces) `key` → `value`.  Returns true if an existing
    /// value was replaced.
    pub fn insert(&self, txn: &Txn, key: &[u8], value: &[u8]) -> Result<bool> {
        let _dbt_span = span(SpanKind::Dbt);
        self.engine.counters().inserts.inc();
        let (path, mut leaf) = self.find_leaf_mut(txn, key)?;
        let leaf_oid = *path.last().expect("path never empty");
        let replaced = leaf.insert_cell(key, Bytes::copy_from_slice(value));
        let new_len = leaf.len();
        // Write-all: a replicated leaf's rewrite covers every copy.
        put_node_all(
            txn,
            self.tree,
            leaf_oid,
            &Node::Leaf(leaf),
            &self.engine.counters().replica_fanout_writes,
        )?;
        self.track_access(leaf_oid, new_len, true);

        if new_len > self.engine.config().leaf_max_cells {
            match self.engine.config().split_mode {
                SplitMode::Synchronous => {
                    let ctx = self.engine.split_ctx();
                    let idx = path.len() - 1;
                    split_node_in_txn(&ctx, txn, self.tree, &path, idx, SplitReason::Size)?;
                }
                SplitMode::Delegated => {
                    self.engine.request_split(SplitRequest {
                        tree: self.tree,
                        oid: leaf_oid,
                        reason: SplitReason::Size,
                    });
                }
            }
        }
        Ok(replaced)
    }

    /// Deletes `key`.  Returns true if it existed.
    pub fn delete(&self, txn: &Txn, key: &[u8]) -> Result<bool> {
        let _dbt_span = span(SpanKind::Dbt);
        self.engine.counters().deletes.inc();
        let lr = self.find_leaf(txn, key)?;
        let leaf_oid = lr.oid();
        // Probe the view first: a miss (the common case for blind deletes)
        // never materialises or rewrites the leaf.
        if lr.leaf.find(key)?.is_none() {
            self.track_access(leaf_oid, lr.leaf.len(), false);
            return Ok(false);
        }
        let mut leaf = lr.leaf.to_leaf_node()?;
        leaf.remove_cell(key);
        let len = leaf.len();
        put_node_all(
            txn,
            self.tree,
            leaf_oid,
            &Node::Leaf(leaf),
            &self.engine.counters().replica_fanout_writes,
        )?;
        self.track_access(leaf_oid, len, true);
        Ok(true)
    }

    /// Opens a forward cursor over `[start, end)`.  `None` bounds mean
    /// "from the smallest key" / "to the end of the tree".
    pub fn scan<'a>(
        &self,
        txn: &'a Txn,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<DbtCursor<'a>> {
        Ok(DbtCursor::new(txn, self.scan_raw(txn, start, end)?))
    }

    /// Opens the transaction-free scan state over `[start, end)`; the same
    /// transaction must be passed to every [`RawCursor::next_entry`] call.
    /// This is the shape owned operator trees (the SQL executor) store.
    pub fn scan_raw(
        &self,
        txn: &Txn,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<RawCursor> {
        let _dbt_span = span(SpanKind::Dbt);
        self.engine.counters().scans.inc();
        let start_key = start.unwrap_or(b"");
        let lr = self.find_leaf(txn, start_key)?;
        let idx = lr.leaf.lower_bound(start_key)?;
        Ok(RawCursor::new(
            self.tree,
            lr.leaf,
            idx,
            end.map(|e| e.to_vec()),
            Arc::clone(&self.engine.counters().scan_leaf_fetches),
        ))
    }

    /// Returns the last entry whose key is strictly below `hi` (or the last
    /// entry of the tree when `hi` is `None`).
    ///
    /// The tree has no left-sibling pointers, so this is a verified descent
    /// from the root that backtracks through earlier children when a subtree
    /// turns out to hold nothing below the bound — O(height) node fetches in
    /// the common case.  This is what compiles `MAX(col)` over an indexed
    /// column into a bounded read instead of a full scan.
    pub fn seek_last(&self, txn: &Txn, hi: Option<&[u8]>) -> Result<Option<(Bytes, Bytes)>> {
        let _dbt_span = span(SpanKind::Dbt);
        self.engine.counters().scans.inc();
        self.last_under(txn, ROOT_OID, hi, 0)
    }

    fn last_under(
        &self,
        txn: &Txn,
        oid: Oid,
        hi: Option<&[u8]>,
        depth: usize,
    ) -> Result<Option<(Bytes, Bytes)>> {
        if depth >= MAX_SEARCH_DEPTH {
            return Err(Error::Corruption(format!(
                "reverse seek in tree {} exceeded depth {MAX_SEARCH_DEPTH}",
                self.tree
            )));
        }
        self.engine.counters().node_fetches.inc();
        count(TraceCounter::NodeFetches, 1);
        match fetch_view(txn, self.tree, oid)? {
            None if oid == ROOT_OID => Err(Error::NotFound(format!(
                "tree {} has no root node (was it created?)",
                self.tree
            ))),
            // The descent never trusts the cache, so a dangling child means
            // a damaged tree at this snapshot.
            None => Err(Error::Corruption(format!(
                "child pointer {}:{oid} dangles at this snapshot",
                self.tree
            ))),
            Some(NodeView::Leaf(leaf)) => {
                let idx = match hi {
                    Some(h) => leaf.lower_bound(h)?,
                    None => leaf.len(),
                };
                if idx == 0 {
                    Ok(None)
                } else {
                    leaf.cell_bytes(idx - 1).map(Some)
                }
            }
            Some(NodeView::Inner(inner)) => {
                // Start at the child responsible for the bound; children to
                // its left hold strictly smaller keys, so walk leftwards
                // only when a subtree is empty below the bound.
                let start = match hi {
                    Some(h) if inner.fence_contains(h) => inner.child_index(h)?,
                    _ => inner.len() - 1,
                };
                for j in (0..=start).rev() {
                    if let Some(found) = self.last_under(txn, inner.child(j), hi, depth + 1)? {
                        return Ok(Some(found));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Opens a cursor over exactly the keys that start with `prefix`.
    ///
    /// The upper bound is the smallest byte string greater than every key
    /// with that prefix (computed here, not by the caller), so the scan
    /// stops at the bound instead of over-reading and filtering client-side.
    /// This is the shape of a secondary-index equality scan: the prefix is
    /// the encoded indexed values and the entries differ only in their
    /// rowid suffix.
    pub fn scan_prefix<'a>(&self, txn: &'a Txn, prefix: &[u8]) -> Result<DbtCursor<'a>> {
        let end = prefix_successor(prefix);
        self.scan(txn, Some(prefix), end.as_deref())
    }

    /// Number of keys in the tree (full scan; tests and small tools only).
    ///
    /// Walks the leaf chain and sums per-leaf cell counts from the page
    /// headers — no cell is decoded, nothing is allocated per key.
    pub fn count(&self, txn: &Txn) -> Result<u64> {
        let _dbt_span = span(SpanKind::Dbt);
        self.engine.counters().scans.inc();
        let counters = self.engine.counters();
        let lr = self.find_leaf(txn, b"")?;
        let mut n = lr.leaf.len() as u64;
        let mut next = lr.leaf.next();
        while let Some(oid) = next {
            counters.scan_leaf_fetches.inc();
            count(TraceCounter::NodeFetches, 1);
            let leaf = fetch_leaf_sibling(txn, self.tree, oid)?;
            n += leaf.len() as u64;
            next = leaf.next();
        }
        Ok(n)
    }

    /// Height of the tree at the transaction's snapshot (0 = the root is a
    /// leaf).  Diagnostics and tests.
    pub fn height(&self, txn: &Txn) -> Result<u8> {
        let root = fetch_view(txn, self.tree, ROOT_OID)?
            .ok_or_else(|| Error::NotFound(format!("tree {} has no root", self.tree)))?;
        Ok(root.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yesquel_common::DbtConfig;
    use yesquel_kv::KvDatabase;

    fn setup(nservers: usize, cfg: DbtConfig) -> (KvDatabase, Arc<DbtEngine>, Dbt) {
        let db = KvDatabase::with_servers(nservers);
        let engine = DbtEngine::new(db.client(), cfg);
        engine.create_tree(1).unwrap();
        let dbt = engine.tree(1);
        (db, engine, dbt)
    }

    fn small_cfg() -> DbtConfig {
        DbtConfig {
            leaf_max_cells: 4,
            inner_max_children: 4,
            split_mode: SplitMode::Synchronous,
            load_splits: false,
            ..DbtConfig::default()
        }
    }

    fn key(i: u64) -> Vec<u8> {
        yesquel_common::encoding::order_encode_i64(i as i64).to_vec()
    }

    #[test]
    fn insert_lookup_delete_single_leaf() {
        let (_db, _engine, dbt) = setup(2, DbtConfig::default());
        let txn = _db.client().begin();
        assert_eq!(dbt.lookup(&txn, b"a").unwrap(), None);
        assert!(!dbt.insert(&txn, b"a", b"1").unwrap());
        assert!(!dbt.insert(&txn, b"b", b"2").unwrap());
        assert!(dbt.insert(&txn, b"a", b"1bis").unwrap());
        assert_eq!(
            dbt.lookup(&txn, b"a").unwrap().as_deref(),
            Some(&b"1bis"[..])
        );
        assert!(dbt.delete(&txn, b"a").unwrap());
        assert!(!dbt.delete(&txn, b"a").unwrap());
        assert_eq!(dbt.lookup(&txn, b"a").unwrap(), None);
        txn.commit().unwrap();
    }

    #[test]
    fn uncommitted_writes_invisible_to_other_transactions() {
        let (db, _engine, dbt) = setup(2, DbtConfig::default());
        let txn = db.client().begin();
        dbt.insert(&txn, b"k", b"v").unwrap();
        let other = db.client().begin();
        assert_eq!(dbt.lookup(&other, b"k").unwrap(), None);
        other.commit().unwrap();
        txn.commit().unwrap();
        let after = db.client().begin();
        assert_eq!(
            dbt.lookup(&after, b"k").unwrap().as_deref(),
            Some(&b"v"[..])
        );
        after.commit().unwrap();
    }

    #[test]
    fn synchronous_splits_grow_tree_and_preserve_data() {
        let (db, _engine, dbt) = setup(4, small_cfg());
        let n = 200u64;
        for i in 0..n {
            let txn = db.client().begin();
            dbt.insert(&txn, &key(i), format!("val{i}").as_bytes())
                .unwrap();
            txn.commit().unwrap();
        }
        let txn = db.client().begin();
        assert!(dbt.height(&txn).unwrap() >= 2, "tree should have grown");
        assert_eq!(dbt.count(&txn).unwrap(), n);
        for i in 0..n {
            let v = dbt.lookup(&txn, &key(i)).unwrap().expect("present");
            assert_eq!(&v[..], format!("val{i}").as_bytes());
        }
        txn.commit().unwrap();
        assert!(db.stats().counter("dbt.splits").get() > 10);
        assert!(db.stats().counter("dbt.root_splits").get() >= 1);
    }

    #[test]
    fn delegated_splits_reach_same_state() {
        let cfg = DbtConfig {
            leaf_max_cells: 4,
            inner_max_children: 4,
            split_mode: SplitMode::Delegated,
            load_splits: false,
            ..DbtConfig::default()
        };
        let (db, engine, dbt) = setup(4, cfg);
        let n = 300u64;
        let client = db.client();
        for i in 0..n {
            // Delegated splits commit concurrently with these transactions,
            // so an individual attempt may hit a write-write conflict; the
            // retry wrapper is the intended usage pattern.
            client
                .run_txn(|txn| dbt.insert(txn, &key(i), b"x"))
                .unwrap();
        }
        engine.wait_for_splits();
        let txn = db.client().begin();
        assert_eq!(dbt.count(&txn).unwrap(), n);
        assert!(dbt.height(&txn).unwrap() >= 1);
        for i in (0..n).step_by(17) {
            assert!(dbt.lookup(&txn, &key(i)).unwrap().is_some());
        }
        txn.commit().unwrap();
        assert!(db.stats().counter("dbt.splits").get() >= 1);
    }

    #[test]
    fn random_order_inserts_scan_sorted() {
        let (db, _engine, dbt) = setup(3, small_cfg());
        let mut keys: Vec<u64> = (0..150).collect();
        // Deterministic shuffle.
        keys.sort_by_key(|k| yesquel_common::ids::splitmix64(*k));
        let txn = db.client().begin();
        for k in &keys {
            dbt.insert(&txn, &key(*k), b"v").unwrap();
        }
        let collected: Vec<Bytes> = dbt
            .scan(&txn, None, None)
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        let mut expected: Vec<Vec<u8>> = (0..150u64).map(key).collect();
        expected.sort();
        assert_eq!(collected, expected);
        txn.commit().unwrap();
    }

    #[test]
    fn range_scan_bounds() {
        let (db, _engine, dbt) = setup(2, small_cfg());
        let txn = db.client().begin();
        for i in 0..50u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        let got: Vec<Bytes> = dbt
            .scan(&txn, Some(&key(10)), Some(&key(20)))
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        let expected: Vec<Vec<u8>> = (10..20u64).map(key).collect();
        assert_eq!(got, expected);
        // Empty range.
        assert_eq!(
            dbt.scan(&txn, Some(&key(30)), Some(&key(30)))
                .unwrap()
                .count(),
            0
        );
        txn.commit().unwrap();
    }

    #[test]
    fn bounded_scan_stops_without_fetching_past_the_bound() {
        let (db, _engine, dbt) = setup(2, small_cfg());
        let txn = db.client().begin();
        for i in 0..50u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();
        let txn = db.client().begin();
        let lr = dbt.find_leaf(&txn, &key(0)).unwrap();
        let n0 = lr.leaf.len();
        assert!(lr.leaf.next().is_some(), "tree should have several leaves");
        // End the scan exactly at the first leaf's upper fence (the first
        // key of its right sibling): the cursor must stop on the fence
        // check alone, without fetching the sibling.
        let end = key(n0 as u64);
        let before = db.stats().counter("dbt.scan_leaf_fetches").get();
        let got = dbt.scan(&txn, None, Some(&end)).unwrap().count();
        assert_eq!(got, n0);
        assert_eq!(
            db.stats().counter("dbt.scan_leaf_fetches").get(),
            before,
            "scan bounded at a leaf boundary must not fetch the next leaf"
        );
        txn.commit().unwrap();
    }

    #[test]
    fn scan_prefix_yields_exactly_prefixed_keys() {
        let (db, _engine, dbt) = setup(2, small_cfg());
        let txn = db.client().begin();
        for k in [
            &[1u8, 1][..],
            &[1, 2],
            &[2],
            &[2, 0],
            &[2, 255],
            &[2, 255, 255],
            &[3, 0],
        ] {
            dbt.insert(&txn, k, b"v").unwrap();
        }
        let got: Vec<Bytes> = dbt
            .scan_prefix(&txn, &[2])
            .unwrap()
            .map(|r| r.unwrap().0)
            .collect();
        let expected: Vec<&[u8]> = vec![&[2], &[2, 0], &[2, 255], &[2, 255, 255]];
        assert_eq!(got, expected);
        // An all-0xff prefix has no successor: the scan is unbounded above.
        dbt.insert(&txn, &[255, 255, 7], b"v").unwrap();
        assert_eq!(dbt.scan_prefix(&txn, &[255, 255]).unwrap().count(), 1);
        txn.commit().unwrap();
    }

    #[test]
    fn prefix_successor_edge_cases() {
        assert_eq!(prefix_successor(&[1, 2, 3]), Some(vec![1, 2, 4]));
        assert_eq!(prefix_successor(&[1, 0xff]), Some(vec![2]));
        assert_eq!(prefix_successor(&[0xff, 0xff]), None);
        assert_eq!(prefix_successor(&[]), None);
    }

    #[test]
    fn cache_makes_warm_lookups_single_fetch() {
        let (db, engine, dbt) = setup(
            4,
            DbtConfig {
                leaf_max_cells: 8,
                ..DbtConfig::default()
            },
        );
        // Build a tree of a few hundred keys so there are inner nodes.
        let txn = db.client().begin();
        for i in 0..400u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();
        engine.wait_for_splits();

        // Warm the cache.
        let txn = db.client().begin();
        for i in 0..400u64 {
            dbt.lookup(&txn, &key(i)).unwrap();
        }
        txn.commit().unwrap();

        // Measure fetches per warm lookup.
        let before = db.stats().counter("dbt.node_fetches").get();
        let txn = db.client().begin();
        let lookups = 200u64;
        for i in 0..lookups {
            assert!(dbt.lookup(&txn, &key(i * 2)).unwrap().is_some());
        }
        txn.commit().unwrap();
        let fetches = db.stats().counter("dbt.node_fetches").get() - before;
        let per_lookup = fetches as f64 / lookups as f64;
        assert!(
            per_lookup < 1.6,
            "warm lookups should fetch ~1 node, measured {per_lookup:.2}"
        );
    }

    #[test]
    fn no_cache_fetches_whole_path() {
        let cfg = DbtConfig {
            leaf_max_cells: 8,
            ..DbtConfig::ablation_no_cache()
        };
        let (db, engine, dbt) = setup(4, cfg);
        let txn = db.client().begin();
        for i in 0..400u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();
        engine.wait_for_splits();

        let txn = db.client().begin();
        let height = dbt.height(&txn).unwrap() as f64;
        let before = db.stats().counter("dbt.node_fetches").get();
        let lookups = 100u64;
        for i in 0..lookups {
            dbt.lookup(&txn, &key(i * 3)).unwrap();
        }
        let fetches = db.stats().counter("dbt.node_fetches").get() - before;
        txn.commit().unwrap();
        let per_lookup = fetches as f64 / lookups as f64;
        assert!(
            per_lookup >= height,
            "without a cache every lookup must walk the path: {per_lookup:.2} < height {height}"
        );
    }

    #[test]
    fn stale_cache_recovers_via_back_down() {
        // Two engines over the same deployment: engine A builds its cache,
        // engine B splits nodes underneath it, then A must still find keys.
        let db = KvDatabase::with_servers(3);
        let cfg = DbtConfig {
            leaf_max_cells: 4,
            inner_max_children: 4,
            split_mode: SplitMode::Synchronous,
            load_splits: false,
            ..DbtConfig::default()
        };
        let engine_a = DbtEngine::new(db.client(), cfg.clone());
        let engine_b = DbtEngine::new(db.client(), cfg);
        engine_a.create_tree(1).unwrap();
        let dbt_a = engine_a.tree(1);
        let dbt_b = engine_b.tree(1);

        // A inserts a little and warms its cache.
        let txn = db.client().begin();
        for i in 0..30u64 {
            dbt_a.insert(&txn, &key(i), b"a").unwrap();
        }
        txn.commit().unwrap();
        let txn = db.client().begin();
        for i in 0..30u64 {
            dbt_a.lookup(&txn, &key(i)).unwrap();
        }
        txn.commit().unwrap();

        // B inserts a lot more, causing many splits A does not know about.
        let txn = db.client().begin();
        for i in 30..400u64 {
            dbt_b.insert(&txn, &key(i), b"b").unwrap();
        }
        txn.commit().unwrap();

        // A must still find everything despite its stale cache.
        let txn = db.client().begin();
        for i in (0..400u64).step_by(7) {
            assert!(
                dbt_a.lookup(&txn, &key(i)).unwrap().is_some(),
                "key {i} lost"
            );
        }
        txn.commit().unwrap();
        assert!(db.stats().counter("dbt.search_restarts").get() > 0);
    }

    #[test]
    fn load_splits_fire_on_hot_leaf() {
        let cfg = DbtConfig {
            leaf_max_cells: 64,
            load_splits: true,
            load_split_threshold: 50,
            split_mode: SplitMode::Delegated,
            // This test is about load *splits*; with replication on, the
            // read-heavy hammering below would promote the leaf instead.
            replicate_hot_nodes: false,
            ..DbtConfig::default()
        };
        let (db, engine, dbt) = setup(4, cfg);
        let txn = db.client().begin();
        for i in 0..16u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();

        // Hammer the same small key range.
        for _ in 0..40 {
            let txn = db.client().begin();
            for i in 0..4u64 {
                dbt.lookup(&txn, &key(i)).unwrap();
            }
            txn.commit().unwrap();
        }
        engine.wait_for_splits();
        assert!(
            db.stats().counter("dbt.load_splits").get() >= 1,
            "hot leaf should have triggered a load split: {}",
            db.stats().render_counters()
        );
        // Data is intact afterwards.
        let txn = db.client().begin();
        assert_eq!(dbt.count(&txn).unwrap(), 16);
        txn.commit().unwrap();
    }

    /// Configuration under which a hammered leaf promotes quickly.  The
    /// threshold is high enough that the 16 setup inserts do not tip the
    /// first hot window into the write-heavy (split) classification.
    fn replication_cfg() -> DbtConfig {
        DbtConfig {
            leaf_max_cells: 64,
            load_splits: true,
            load_split_threshold: 100,
            split_mode: SplitMode::Delegated,
            replica_factor: 2,
            ..DbtConfig::default()
        }
    }

    #[test]
    fn read_hot_leaf_promotes_and_reads_spread_to_replicas() {
        let (db, engine, dbt) = setup(4, replication_cfg());
        let txn = db.client().begin();
        for i in 0..16u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();

        // Read-hammer a small range: the leaf must be *replicated*, not
        // load-split (its traffic is read-heavy).
        for _ in 0..60 {
            let txn = db.client().begin();
            for i in 0..4u64 {
                assert!(dbt.lookup(&txn, &key(i)).unwrap().is_some());
            }
            txn.commit().unwrap();
        }
        engine.wait_for_splits();
        assert!(
            db.stats().counter("dbt.replica_promotions").get() >= 1,
            "hot leaf should have been promoted: {}",
            db.stats().render_counters()
        );
        assert_eq!(
            db.stats().counter("dbt.load_splits").get(),
            0,
            "read-heavy traffic must replicate, not split"
        );

        // Further reads rotate over the copies and stay correct.
        let before = db.stats().counter("dbt.replica_reads").get();
        for _ in 0..10 {
            let txn = db.client().begin();
            for i in 0..16u64 {
                assert!(dbt.lookup(&txn, &key(i)).unwrap().is_some());
            }
            txn.commit().unwrap();
        }
        assert!(
            db.stats().counter("dbt.replica_reads").get() > before,
            "read-any should serve some reads from replicas"
        );
    }

    #[test]
    fn writes_fan_out_and_replicas_stay_byte_identical() {
        let (db, engine, dbt) = setup(4, replication_cfg());
        let client = db.client();
        let txn = client.begin();
        for i in 0..16u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();
        for _ in 0..60 {
            let txn = client.begin();
            for i in 0..4u64 {
                dbt.lookup(&txn, &key(i)).unwrap();
            }
            txn.commit().unwrap();
        }
        engine.wait_for_splits();
        assert!(db.stats().counter("dbt.replica_promotions").get() >= 1);

        // Writes to the replicated leaf fan out to every copy.
        for i in 0..8u64 {
            client
                .run_txn(|txn| dbt.insert(txn, &key(i), b"updated"))
                .unwrap();
        }
        assert!(db.stats().counter("dbt.replica_fanout_writes").get() >= 1);

        // Every replica listed by any reachable node is byte-identical to
        // its primary at a fresh snapshot.
        let txn = client.begin();
        let mut queue = vec![ROOT_OID];
        let mut replicated_nodes = 0;
        while let Some(oid) = queue.pop() {
            let primary = txn.get(ObjectId::new(1, oid)).unwrap().expect("node");
            let node = Node::decode_shared(&primary).unwrap();
            if let Node::Inner(inner) = &node {
                queue.extend(inner.children.iter().copied());
            }
            for r in node.replicas() {
                replicated_nodes += 1;
                let copy = txn.get(ObjectId::new(1, *r)).unwrap().expect("replica");
                assert_eq!(primary, copy, "replica {r} of node {oid} diverged");
            }
        }
        assert!(replicated_nodes >= 1);
        for i in 0..8u64 {
            assert_eq!(
                dbt.lookup(&txn, &key(i)).unwrap().as_deref(),
                Some(&b"updated"[..])
            );
        }
        txn.commit().unwrap();
    }

    #[test]
    fn splitting_a_replicated_leaf_drops_its_replicas() {
        let (db, engine, dbt) = setup(4, replication_cfg());
        let client = db.client();
        let txn = client.begin();
        for i in 0..16u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();
        for _ in 0..60 {
            let txn = client.begin();
            for i in 0..16u64 {
                dbt.lookup(&txn, &key(i)).unwrap();
            }
            txn.commit().unwrap();
        }
        engine.wait_for_splits();
        assert!(db.stats().counter("dbt.replica_promotions").get() >= 1);
        let txn = client.begin();
        let lr = dbt.find_leaf(&txn, &key(0)).unwrap();
        let old_replicas = lr.leaf.replicas();
        txn.abort();
        assert!(!old_replicas.is_empty(), "leaf should be replicated");

        // Grow the leaf past its size bound so it splits.
        for i in 100..200u64 {
            client
                .run_txn(|txn| dbt.insert(txn, &key(i), b"x"))
                .unwrap();
        }
        engine.wait_for_splits();
        let txn = client.begin();
        // The old replica objects are gone at a fresh snapshot.
        for r in &old_replicas {
            assert!(
                txn.get(ObjectId::new(1, *r)).unwrap().is_none(),
                "stale replica {r} survived the split"
            );
        }
        assert_eq!(dbt.count(&txn).unwrap(), 116);
        txn.commit().unwrap();
    }

    #[test]
    fn operations_on_missing_tree_fail_cleanly() {
        let db = KvDatabase::with_servers(1);
        let engine = DbtEngine::new(db.client(), DbtConfig::default());
        let dbt = engine.tree(77);
        let txn = db.client().begin();
        match dbt.lookup(&txn, b"x") {
            Err(Error::NotFound(_)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
        txn.abort();
    }

    #[test]
    fn atomic_multi_insert_within_one_transaction() {
        let (db, _engine, dbt) = setup(4, small_cfg());
        // A transaction inserting many keys (causing splits) either commits
        // entirely or not at all.
        let txn = db.client().begin();
        for i in 0..100u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.abort();
        let check = db.client().begin();
        assert_eq!(dbt.count(&check).unwrap(), 0);
        check.commit().unwrap();

        let txn = db.client().begin();
        for i in 0..100u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        txn.commit().unwrap();
        let check = db.client().begin();
        assert_eq!(dbt.count(&check).unwrap(), 100);
        check.commit().unwrap();
    }

    #[test]
    fn seek_last_finds_predecessor_across_leaves() {
        let (db, _engine, dbt) = setup(3, small_cfg());
        let txn = db.client().begin();
        // Empty tree: nothing below any bound.
        assert_eq!(dbt.seek_last(&txn, None).unwrap(), None);
        for i in (0..100u64).step_by(2) {
            dbt.insert(&txn, &key(i), format!("v{i}").as_bytes())
                .unwrap();
        }
        txn.commit().unwrap();
        let txn = db.client().begin();
        // Unbounded: the very last entry.
        let (k, v) = dbt.seek_last(&txn, None).unwrap().unwrap();
        assert_eq!(&k[..], &key(98)[..]);
        assert_eq!(&v[..], b"v98");
        // Exclusive bound on a present key returns its predecessor.
        let (k, _) = dbt.seek_last(&txn, Some(&key(50))).unwrap().unwrap();
        assert_eq!(&k[..], &key(48)[..]);
        // Bound between keys returns the last key below it.
        let (k, _) = dbt.seek_last(&txn, Some(&key(51))).unwrap().unwrap();
        assert_eq!(&k[..], &key(50)[..]);
        // Bound below the smallest key: nothing.
        assert_eq!(dbt.seek_last(&txn, Some(&key(0))).unwrap(), None);
        // Bound above the largest key: the last entry.
        let (k, _) = dbt.seek_last(&txn, Some(&key(1000))).unwrap().unwrap();
        assert_eq!(&k[..], &key(98)[..]);
        txn.commit().unwrap();
    }

    #[test]
    fn raw_cursor_threads_transaction_per_call() {
        let (db, _engine, dbt) = setup(2, small_cfg());
        let txn = db.client().begin();
        for i in 0..30u64 {
            dbt.insert(&txn, &key(i), b"v").unwrap();
        }
        // The raw cursor owns only scan state; the transaction is passed to
        // every pull (the shape the SQL executor's owned pipelines need).
        let mut raw = dbt.scan_raw(&txn, Some(&key(5)), Some(&key(25))).unwrap();
        let mut got = Vec::new();
        while let Some((k, _)) = raw.next_entry(&txn).unwrap() {
            got.push(k);
        }
        let expected: Vec<Vec<u8>> = (5..25u64).map(key).collect();
        assert_eq!(got, expected);
        txn.commit().unwrap();
    }

    #[test]
    fn scan_yields_page_slices() {
        // Cursor items must be zero-copy slices of the fetched leaf pages,
        // not per-item allocations.
        let (db, _engine, dbt) = setup(2, small_cfg());
        let txn = db.client().begin();
        for i in 0..20u64 {
            dbt.insert(&txn, &key(i), b"scan-value").unwrap();
        }
        txn.commit().unwrap();
        let txn = db.client().begin();
        for item in dbt.scan(&txn, None, None).unwrap() {
            let (k, v) = item.unwrap();
            // Key and value slices of one leaf page share its backing
            // allocation; both being non-empty views is the observable
            // contract (pointer identity is checked in node.rs tests).
            assert_eq!(k.len(), 8);
            assert_eq!(&v[..], b"scan-value");
        }
        txn.commit().unwrap();
    }
}
