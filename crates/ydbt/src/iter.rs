//! Forward range scans over a tree.
//!
//! A cursor walks a leaf's cells and then follows the leaf's right-sibling
//! pointer, fetching the next leaf through the same transaction; the whole
//! scan therefore observes one consistent snapshot, including the
//! transaction's own uncommitted writes (which live in re-written leaf
//! nodes inside the transaction's write buffer).
//!
//! The cursor iterates straight out of the [`LeafView`] — leaves are never
//! materialised, and every yielded `(key, value)` pair is a pair of
//! zero-copy [`Bytes`] slices of the leaf page (reference-count bumps, no
//! per-item allocation).
//!
//! Two shapes are provided:
//!
//! * [`RawCursor`] owns only scan *state* (the current leaf view, position
//!   and end bound) and is handed the transaction on every
//!   [`RawCursor::next_entry`] call.  Because it borrows nothing, a fully
//!   owned operator tree (the SQL executor's pulling pipeline, which must
//!   outlive the statement that built it) can store it alongside the
//!   transaction it reads through.
//! * [`DbtCursor`] pairs a `RawCursor` with a borrowed transaction and
//!   implements [`Iterator`] — the convenient shape for straight-line code.

use std::sync::Arc;

use bytes::Bytes;
use yesquel_common::obs::trace::{count, TraceCounter};
use yesquel_common::stats::Counter;
use yesquel_common::{Result, TreeId};
use yesquel_kv::Txn;

use crate::node::LeafView;
use crate::tree::fetch_leaf_sibling;

/// Transaction-free scan state over `[start, end)` of one tree.  The
/// transaction is supplied per call, so the cursor itself is `'static` and
/// can live inside owned operator trees.
pub struct RawCursor {
    tree: TreeId,
    leaf: Option<LeafView>,
    idx: usize,
    end: Option<Vec<u8>>,
    leaf_fetches: Arc<Counter>,
}

impl RawCursor {
    pub(crate) fn new(
        tree: TreeId,
        leaf: LeafView,
        idx: usize,
        end: Option<Vec<u8>>,
        leaf_fetches: Arc<Counter>,
    ) -> Self {
        RawCursor {
            tree,
            leaf: Some(leaf),
            idx,
            end,
            leaf_fetches,
        }
    }

    fn advance_leaf(&mut self, txn: &Txn) -> Result<bool> {
        let next = match &self.leaf {
            // With an end bound, the sibling is fetched only while the
            // current leaf's upper fence is still below the bound: every key
            // in a right sibling is >= this leaf's upper fence, so once the
            // fence reaches the bound the scan is over — no trailing
            // over-read of one leaf per bounded scan.
            Some(l) => match &self.end {
                Some(end) if !l.upper_fence_below(end) => None,
                _ => l.next(),
            },
            None => return Ok(false),
        };
        match next {
            None => {
                self.leaf = None;
                Ok(false)
            }
            Some(oid) => {
                self.leaf_fetches.inc();
                count(TraceCounter::NodeFetches, 1);
                self.leaf = Some(fetch_leaf_sibling(txn, self.tree, oid)?);
                self.idx = 0;
                Ok(true)
            }
        }
    }

    /// Yields the next `(key, value)` entry of the scan, reading any further
    /// leaves through `txn`, or `None` at the end of the range.  The caller
    /// must pass the same transaction the cursor was opened under.
    pub fn next_entry(&mut self, txn: &Txn) -> Result<Option<(Bytes, Bytes)>> {
        loop {
            let Some(leaf) = self.leaf.as_ref() else {
                return Ok(None);
            };
            if self.idx < leaf.len() {
                let (k, v) = match leaf.cell_bytes(self.idx) {
                    Ok(cell) => cell,
                    Err(e) => {
                        self.leaf = None;
                        return Err(e);
                    }
                };
                if let Some(end) = &self.end {
                    if &k[..] >= end.as_slice() {
                        self.leaf = None;
                        return Ok(None);
                    }
                }
                self.idx += 1;
                return Ok(Some((k, v)));
            }
            match self.advance_leaf(txn) {
                Ok(true) => continue,
                Ok(false) => return Ok(None),
                Err(e) => {
                    self.leaf = None;
                    return Err(e);
                }
            }
        }
    }
}

/// A forward cursor over `[start, end)` of one tree, borrowing its
/// transaction: [`RawCursor`] plus `Iterator` convenience.
pub struct DbtCursor<'a> {
    txn: &'a Txn,
    raw: RawCursor,
}

impl<'a> DbtCursor<'a> {
    pub(crate) fn new(txn: &'a Txn, raw: RawCursor) -> Self {
        DbtCursor { txn, raw }
    }
}

impl Iterator for DbtCursor<'_> {
    type Item = Result<(Bytes, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.raw.next_entry(self.txn).transpose()
    }
}
