//! Forward range scans over a tree.
//!
//! A cursor walks a leaf's cells and then follows the leaf's right-sibling
//! pointer, fetching the next leaf through the same transaction; the whole
//! scan therefore observes one consistent snapshot, including the
//! transaction's own uncommitted writes (which live in re-written leaf
//! nodes inside the transaction's write buffer).

use bytes::Bytes;
use yesquel_common::stats::StatsRegistry;
use yesquel_common::{Error, Result, TreeId};
use yesquel_kv::Txn;

use crate::node::{LeafNode, Node};
use crate::tree::fetch_node;

/// A forward cursor over `[start, end)` of one tree.
pub struct DbtCursor<'a> {
    txn: &'a Txn,
    tree: TreeId,
    leaf: Option<LeafNode>,
    idx: usize,
    end: Option<Vec<u8>>,
    stats: StatsRegistry,
}

impl<'a> DbtCursor<'a> {
    pub(crate) fn new(
        txn: &'a Txn,
        tree: TreeId,
        leaf: LeafNode,
        idx: usize,
        end: Option<Vec<u8>>,
        stats: StatsRegistry,
    ) -> Self {
        DbtCursor {
            txn,
            tree,
            leaf: Some(leaf),
            idx,
            end,
            stats,
        }
    }

    fn advance_leaf(&mut self) -> Result<bool> {
        let next = match &self.leaf {
            Some(l) => l.next,
            None => return Ok(false),
        };
        match next {
            None => {
                self.leaf = None;
                Ok(false)
            }
            Some(oid) => {
                self.stats.counter("dbt.scan_leaf_fetches").inc();
                match fetch_node(self.txn, self.tree, oid)? {
                    Some(Node::Leaf(l)) => {
                        self.leaf = Some(l);
                        self.idx = 0;
                        Ok(true)
                    }
                    Some(Node::Inner(_)) => Err(Error::Corruption(format!(
                        "leaf sibling pointer {}:{oid} refers to an inner node",
                        self.tree
                    ))),
                    None => Err(Error::Corruption(format!(
                        "leaf sibling pointer {}:{oid} dangles at this snapshot",
                        self.tree
                    ))),
                }
            }
        }
    }
}

impl Iterator for DbtCursor<'_> {
    type Item = Result<(Vec<u8>, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf.as_ref()?;
            if self.idx < leaf.cells.len() {
                let (k, v) = leaf.cells[self.idx].clone();
                if let Some(end) = &self.end {
                    if k.as_slice() >= end.as_slice() {
                        self.leaf = None;
                        return None;
                    }
                }
                self.idx += 1;
                return Some(Ok((k, v)));
            }
            match self.advance_leaf() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.leaf = None;
                    return Some(Err(e));
                }
            }
        }
    }
}
