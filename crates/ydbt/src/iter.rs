//! Forward range scans over a tree.
//!
//! A cursor walks a leaf's cells and then follows the leaf's right-sibling
//! pointer, fetching the next leaf through the same transaction; the whole
//! scan therefore observes one consistent snapshot, including the
//! transaction's own uncommitted writes (which live in re-written leaf
//! nodes inside the transaction's write buffer).
//!
//! The cursor iterates straight out of the [`LeafView`] — leaves are never
//! materialised, and every yielded `(key, value)` pair is a pair of
//! zero-copy [`Bytes`] slices of the leaf page (reference-count bumps, no
//! per-item allocation).

use std::sync::Arc;

use bytes::Bytes;
use yesquel_common::stats::Counter;
use yesquel_common::{Result, TreeId};
use yesquel_kv::Txn;

use crate::node::LeafView;
use crate::tree::fetch_leaf_sibling;

/// A forward cursor over `[start, end)` of one tree.
pub struct DbtCursor<'a> {
    txn: &'a Txn,
    tree: TreeId,
    leaf: Option<LeafView>,
    idx: usize,
    end: Option<Vec<u8>>,
    leaf_fetches: Arc<Counter>,
}

impl<'a> DbtCursor<'a> {
    pub(crate) fn new(
        txn: &'a Txn,
        tree: TreeId,
        leaf: LeafView,
        idx: usize,
        end: Option<Vec<u8>>,
        leaf_fetches: Arc<Counter>,
    ) -> Self {
        DbtCursor {
            txn,
            tree,
            leaf: Some(leaf),
            idx,
            end,
            leaf_fetches,
        }
    }

    fn advance_leaf(&mut self) -> Result<bool> {
        let next = match &self.leaf {
            // With an end bound, the sibling is fetched only while the
            // current leaf's upper fence is still below the bound: every key
            // in a right sibling is >= this leaf's upper fence, so once the
            // fence reaches the bound the scan is over — no trailing
            // over-read of one leaf per bounded scan.
            Some(l) => match &self.end {
                Some(end) if !l.upper_fence_below(end) => None,
                _ => l.next(),
            },
            None => return Ok(false),
        };
        match next {
            None => {
                self.leaf = None;
                Ok(false)
            }
            Some(oid) => {
                self.leaf_fetches.inc();
                self.leaf = Some(fetch_leaf_sibling(self.txn, self.tree, oid)?);
                self.idx = 0;
                Ok(true)
            }
        }
    }
}

impl Iterator for DbtCursor<'_> {
    type Item = Result<(Bytes, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf.as_ref()?;
            if self.idx < leaf.len() {
                let (k, v) = match leaf.cell_bytes(self.idx) {
                    Ok(cell) => cell,
                    Err(e) => {
                        self.leaf = None;
                        return Some(Err(e));
                    }
                };
                if let Some(end) = &self.end {
                    if &k[..] >= end.as_slice() {
                        self.leaf = None;
                        return None;
                    }
                }
                self.idx += 1;
                return Some(Ok((k, v)));
            }
            match self.advance_leaf() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.leaf = None;
                    return Some(Err(e));
                }
            }
        }
    }
}
