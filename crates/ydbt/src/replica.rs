//! Hot-node replica sets: read-any/write-all replication of DBT nodes.
//!
//! The paper's second read-scalability lever (next to client caching): a
//! node the load tracker flags as **read**-hot gains replicas on other
//! servers.  A replica is an ordinary object — the same page bytes stored
//! under a different oid whose hash placement puts it on a different server
//! — and the primary page lists its replica oids in its header (see
//! `node.rs`).  Reads go **read-any**: the client picks one copy by
//! rotation and falls back to the primary if the copy has no version at
//! its snapshot.  Writes go **write-all**: every writer materialises the
//! node it rewrites, so it holds the replica list at its snapshot for free
//! and rewrites every copy in its one transaction — the existing
//! multi-shard 2PC makes all copies move atomically.
//!
//! ## Why read-any is safe
//!
//! Replica-set changes (promotion, and the drop on split) rewrite the
//! primary page, and every node write also writes the primary, so snapshot
//! isolation's first-committer-wins rule serialises replica-set changes
//! against concurrent node writes.  Every committed write therefore fanned
//! out to exactly the replica set committed at its snapshot, which gives
//! the invariant the read path relies on: **at any snapshot, a replica
//! object is either absent (not yet promoted, or dropped) or byte-identical
//! to its primary**.  Absent falls back to the primary; identical is as
//! good as the primary — a replica read can never observe a fence or a
//! version the write-all commit did not publish.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use yesquel_common::ids::shard_index;
use yesquel_common::stats::{Counter, StatsRegistry};
use yesquel_common::{ObjectId, Oid, Result, ServerId, TreeId};
use yesquel_kv::Txn;

use crate::node::Node;
use crate::split::SplitContext;
use crate::tree::fetch_node;

const MAP_SHARDS: usize = 16;

/// Process-wide seed so distinct engines (clients) start their read-any
/// rotation at different offsets — a cheap stand-in for client affinity:
/// with several client processes, each settles on a different copy first.
static AFFINITY_SEED: AtomicU64 = AtomicU64::new(0);

/// One shard of the map: primary `(tree, oid)` → its replica oids.
type Shard = HashMap<(TreeId, Oid), Arc<Vec<Oid>>>;

/// The client-side map of known replica sets, keyed by primary oid.
///
/// Purely a performance hint, like the inner-node cache: a stale entry
/// costs one wasted fetch (the replica misses and the read falls back to
/// the primary), never a wrong answer.  `choose` is designed to cost one
/// relaxed atomic load when nothing is replicated — replication must be
/// pay-as-you-go on unreplicated trees.
pub struct ReplicaMap {
    shards: Vec<Mutex<Shard>>,
    /// Total entries across shards; the fast emptiness check.
    entries: AtomicUsize,
    /// Read-any rotation cursor (shared; staggered per engine by the seed).
    cursor: AtomicU64,
}

impl Default for ReplicaMap {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicaMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        let seed = AFFINITY_SEED.fetch_add(1, Ordering::Relaxed);
        ReplicaMap {
            shards: (0..MAP_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            entries: AtomicUsize::new(0),
            cursor: AtomicU64::new(yesquel_common::ids::splitmix64(seed)),
        }
    }

    fn shard_of(tree: TreeId, oid: Oid) -> usize {
        shard_index(tree, oid, 0x9e37_79b9_7f4a_7c15, MAP_SHARDS)
    }

    /// Picks the copy of `(tree, oid)` to read: `None` means "read the
    /// primary" (always the answer while nothing is replicated), `Some(r)`
    /// names a replica oid.  Rotates over the primary plus every known
    /// replica so read load spreads across all copies.
    pub fn choose(&self, tree: TreeId, oid: Oid) -> Option<Oid> {
        if self.entries.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let g = self.shards[Self::shard_of(tree, oid)].lock();
        let reps = g.get(&(tree, oid))?;
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % (reps.len() as u64 + 1);
        if slot == 0 {
            None
        } else {
            Some(reps[slot as usize - 1])
        }
    }

    /// Records (or refreshes) the replica set of `(tree, oid)` as learned
    /// from a fetched primary page.
    pub fn learn(&self, tree: TreeId, oid: Oid, replicas: &[Oid]) {
        if replicas.is_empty() {
            self.forget(tree, oid);
            return;
        }
        let mut g = self.shards[Self::shard_of(tree, oid)].lock();
        match g.get(&(tree, oid)) {
            Some(known) if known.as_slice() == replicas => {}
            _ => {
                if g.insert((tree, oid), Arc::new(replicas.to_vec())).is_none() {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Forgets the replica set of `(tree, oid)` (after a replica miss or a
    /// split that dropped the replicas).
    pub fn forget(&self, tree: TreeId, oid: Oid) {
        if self.entries.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut g = self.shards[Self::shard_of(tree, oid)].lock();
        if g.remove(&(tree, oid)).is_some() {
            self.entries.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Forgets every entry of `tree` (used by `drop_tree`).
    pub fn forget_tree(&self, tree: TreeId) {
        if self.entries.load(Ordering::Relaxed) == 0 {
            return;
        }
        for shard in &self.shards {
            let mut g = shard.lock();
            let before = g.len();
            g.retain(|(t, _), _| *t != tree);
            self.entries.fetch_sub(before - g.len(), Ordering::Relaxed);
        }
    }

    /// Number of nodes with a known replica set (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True if no replica set is known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Writes `node` under its primary oid **and** every replica oid it lists,
/// as identical bytes, inside the caller's transaction — the write-all half
/// of read-any/write-all.  One encode regardless of fan-out; the per-copy
/// cost is a `Bytes` refcount bump.
pub(crate) fn put_node_all(
    txn: &Txn,
    tree: TreeId,
    oid: Oid,
    node: &Node,
    fanout_writes: &Counter,
) -> Result<()> {
    let replicas = node.replicas();
    if replicas.is_empty() {
        return txn.put(ObjectId::new(tree, oid), node.encode());
    }
    fanout_writes.inc();
    let objs = std::iter::once(oid)
        .chain(replicas.iter().copied())
        .map(|o| ObjectId::new(tree, o));
    txn.put_many(objs, Bytes::from(node.encode()))
}

/// Per-server load snapshot: windowed deltas of each server's request
/// counter.  Placement decisions (load-split targets, replica targets) call
/// [`PlacementTracker::snapshot`] and get the requests served *since the
/// previous decision* — a much better "least loaded right now" signal than
/// the cumulative totals, which forever favour the newest server.
pub struct PlacementTracker {
    prev: Mutex<Vec<u64>>,
}

impl Default for PlacementTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementTracker {
    /// Creates a tracker with an empty window.
    pub fn new() -> Self {
        PlacementTracker {
            prev: Mutex::new(Vec::new()),
        }
    }

    /// Returns each server's request count since the previous snapshot (the
    /// first snapshot sees the cumulative totals) and starts a new window.
    pub fn snapshot(&self, stats: &StatsRegistry, nservers: usize) -> Vec<u64> {
        let cur: Vec<u64> = (0..nservers)
            .map(|i| stats.counter(&format!("rpc.server.{i}.requests")).get())
            .collect();
        let mut prev = self.prev.lock();
        prev.resize(nservers, 0);
        let delta = cur
            .iter()
            .zip(prev.iter())
            .map(|(c, p)| c.saturating_sub(*p))
            .collect();
        *prev = cur;
        delta
    }
}

/// Promotes `(tree, oid)` to a replicated node in its own transaction:
/// allocates replica oids on the least-loaded other servers, rewrites the
/// primary with the replica list, and writes every replica — all one
/// commit.  Retries with contention back-off on write-write conflicts (the
/// node is hot by definition, so conflicts are expected); returns true if a
/// promotion committed.
pub(crate) fn execute_replication(ctx: &SplitContext, tree: TreeId, oid: Oid) -> Result<bool> {
    const ATTEMPTS: usize = 4;
    let nservers = ctx.kv.num_servers();
    let factor = ctx.cfg.replica_factor.min(nservers.saturating_sub(1));
    if !ctx.cfg.replicate_hot_nodes || factor == 0 {
        return Ok(false);
    }
    for attempt in 0..ATTEMPTS {
        if attempt > 0 {
            // Contention back-off: the writers this promotion conflicts
            // with are exactly the traffic that made the node hot.
            std::thread::sleep(std::time::Duration::from_micros(200 << attempt));
        }
        let txn = ctx.kv.begin();
        let Some(mut node) = fetch_node(&txn, tree, oid)? else {
            // The node vanished (split away or tree dropped): nothing to do.
            txn.abort();
            return Ok(false);
        };
        if node.replicas().len() >= factor {
            txn.abort();
            return Ok(false);
        }
        // One copy per distinct server: skip the primary's home and every
        // server already holding a replica, then fill the least-loaded
        // servers first.
        let mut occupied: Vec<ServerId> = vec![ObjectId::new(tree, oid).home_server(nservers)];
        for r in node.replicas() {
            occupied.push(ObjectId::new(tree, *r).home_server(nservers));
        }
        let loads = ctx.placement.snapshot(&ctx.stats, nservers);
        let mut targets: Vec<ServerId> = (0..nservers).filter(|s| !occupied.contains(s)).collect();
        targets.sort_by_key(|s| loads[*s]);
        targets.truncate(factor - node.replicas().len());
        if targets.is_empty() {
            txn.abort();
            return Ok(false);
        }
        for target in targets {
            let roid = ctx.alloc.allocate_on_server(tree, target)?;
            node.replicas_mut().push(roid);
        }
        put_node_all(
            &txn,
            tree,
            oid,
            &node,
            &ctx.stats.counter("dbt.replica_fanout_writes"),
        )?;
        match txn.commit() {
            Ok(_) => {
                ctx.stats.counter("dbt.replica_promotions").inc();
                ctx.replicas.learn(tree, oid, node.replicas());
                ctx.load.forget(tree, oid);
                return Ok(true);
            }
            Err(e) if e.is_retryable() && attempt + 1 < ATTEMPTS => {
                ctx.stats.counter("dbt.replica_retries").inc();
                continue;
            }
            Err(e) if e.is_retryable() => {
                ctx.stats.counter("dbt.replica_abandoned").inc();
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_answers_primary_without_locking() {
        let m = ReplicaMap::new();
        assert_eq!(m.choose(1, 2), None);
        assert!(m.is_empty());
        m.forget(1, 2); // no-op, no underflow
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn rotation_spreads_over_all_copies() {
        let m = ReplicaMap::new();
        m.learn(1, 5, &[100, 101]);
        assert_eq!(m.len(), 1);
        let mut saw = std::collections::HashSet::new();
        for _ in 0..30 {
            saw.insert(m.choose(1, 5));
        }
        // Primary (None) and both replicas all serve reads.
        assert_eq!(saw.len(), 3, "choices {saw:?}");
        // Unknown nodes still read the primary.
        assert_eq!(m.choose(1, 6), None);
    }

    #[test]
    fn learn_refresh_and_forget() {
        let m = ReplicaMap::new();
        m.learn(1, 5, &[100]);
        m.learn(1, 5, &[100]); // idempotent refresh
        assert_eq!(m.len(), 1);
        m.learn(1, 5, &[100, 101]); // replacement
        assert_eq!(m.len(), 1);
        m.learn(1, 5, &[]); // empty set == forget
        assert_eq!(m.len(), 0);
        m.learn(1, 5, &[100]);
        m.learn(2, 9, &[200]);
        m.forget_tree(1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.choose(1, 5), None);
    }

    #[test]
    fn placement_snapshot_is_windowed() {
        let stats = StatsRegistry::new();
        let t = PlacementTracker::new();
        stats.counter("rpc.server.0.requests").add(10);
        stats.counter("rpc.server.1.requests").add(3);
        assert_eq!(t.snapshot(&stats, 2), vec![10, 3]);
        stats.counter("rpc.server.1.requests").add(20);
        // Only the traffic since the previous snapshot counts.
        assert_eq!(t.snapshot(&stats, 2), vec![0, 20]);
    }
}
