//! Allocation of node object-ids.
//!
//! New tree nodes need fresh object ids.  Ids are drawn from a per-tree
//! counter stored in the key-value store (via the non-transactional
//! `Allocate` operation) and handed out locally in blocks, so allocating a
//! node id almost never costs an RPC and never causes transactional
//! conflicts.
//!
//! For load balancing, the allocator can also produce an id whose home
//! server is a specific target: because placement is by hash, it simply
//! draws ids until one maps to the requested server (a handful of draws in
//! expectation).  This is how hot nodes get spread onto lightly-loaded
//! servers after a load split.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use yesquel_common::ids::FIRST_NODE_OID;
use yesquel_common::{Error, ObjectId, Oid, Result, ServerId, TreeId};
use yesquel_kv::KvClient;

/// Number of ids fetched from the store per RPC.
const BLOCK_SIZE: u64 = 128;

/// Block-caching allocator of node object ids; cheap to clone (clones share
/// the local block cache).
#[derive(Clone)]
pub struct OidAllocator {
    kv: KvClient,
    blocks: Arc<Mutex<HashMap<TreeId, (u64, u64)>>>,
}

impl OidAllocator {
    /// Creates an allocator backed by `kv`.
    pub fn new(kv: KvClient) -> Self {
        OidAllocator {
            kv,
            blocks: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Allocates one fresh object id in `tree`.
    pub fn allocate(&self, tree: TreeId) -> Result<Oid> {
        let mut g = self.blocks.lock();
        let entry = g.entry(tree).or_insert((0, 0));
        if entry.0 >= entry.1 {
            let start = self.kv.allocate(ObjectId::meta(tree), BLOCK_SIZE)?;
            *entry = (start, start + BLOCK_SIZE);
        }
        let raw = entry.0;
        entry.0 += 1;
        Ok(FIRST_NODE_OID + raw)
    }

    /// Allocates an object id in `tree` whose home server is `target`.
    ///
    /// Draws ids until one hashes to the target server; skipped ids are
    /// simply never used (object ids are plentiful).
    pub fn allocate_on_server(&self, tree: TreeId, target: ServerId) -> Result<Oid> {
        let nservers = self.kv.num_servers();
        if target >= nservers {
            return Err(Error::InvalidArgument(format!(
                "target server {target} out of range ({nservers} servers)"
            )));
        }
        // With hash placement each draw hits the target with probability
        // 1/nservers; bound the search generously.
        let max_tries = 64 * nservers.max(1);
        for _ in 0..max_tries {
            let oid = self.allocate(tree)?;
            if ObjectId::new(tree, oid).home_server(nservers) == target {
                return Ok(oid);
            }
        }
        // Extremely unlikely; fall back to any id rather than failing the
        // split.
        self.allocate(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use yesquel_kv::KvDatabase;

    #[test]
    fn ids_are_unique_and_start_after_reserved() {
        let db = KvDatabase::with_servers(2);
        let alloc = OidAllocator::new(db.client());
        let mut seen = HashSet::new();
        for _ in 0..500 {
            let oid = alloc.allocate(7).unwrap();
            assert!(oid >= FIRST_NODE_OID);
            assert!(seen.insert(oid), "duplicate oid {oid}");
        }
    }

    #[test]
    fn clones_share_block() {
        let db = KvDatabase::with_servers(2);
        let alloc = OidAllocator::new(db.client());
        let alloc2 = alloc.clone();
        let a = alloc.allocate(1).unwrap();
        let b = alloc2.allocate(1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn trees_have_independent_counters() {
        let db = KvDatabase::with_servers(2);
        let alloc = OidAllocator::new(db.client());
        let a = alloc.allocate(1).unwrap();
        let b = alloc.allocate(2).unwrap();
        assert_eq!(a, b, "different trees should start from the same base");
    }

    #[test]
    fn allocate_on_server_targets_placement() {
        let db = KvDatabase::with_servers(4);
        let alloc = OidAllocator::new(db.client());
        for target in 0..4 {
            let oid = alloc.allocate_on_server(3, target).unwrap();
            assert_eq!(ObjectId::new(3, oid).home_server(4), target);
        }
        assert!(alloc.allocate_on_server(3, 99).is_err());
    }
}
