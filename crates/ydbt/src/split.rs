//! Node splits: size splits, load splits, root splits, and the delegated
//! splitter task.
//!
//! Because the DBT sits **above** distributed transactions, moving cells
//! between nodes is simply a transaction that rewrites the affected nodes
//! and their parent — if it commits, the tree changed atomically; if it
//! conflicts with a concurrent operation, it retries.  This is the property
//! the paper emphasises about building the DBT over the transactional layer.
//!
//! Two execution modes exist (selected by
//! [`DbtConfig::split_mode`](yesquel_common::DbtConfig)):
//!
//! * **Synchronous** — the client that made a node over-full performs the
//!   split inside its own transaction before committing.  Simple, but that
//!   client pays the split latency.
//! * **Delegated** — the client only enqueues a split request; a background
//!   splitter task performs the split as its own transaction.  Ordinary
//!   operations never wait for splits (the paper's design).
//!
//! **Load splits** use the same machinery but are triggered by access
//! frequency rather than size, and may place the new node on the least
//! loaded server (see [`crate::alloc::OidAllocator::allocate_on_server`]).

use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use yesquel_common::ids::ROOT_OID;
use yesquel_common::stats::StatsRegistry;
use yesquel_common::{DbtConfig, Error, ObjectId, Oid, Result, ServerId, TreeId};
use yesquel_kv::{KvClient, Txn};

use crate::alloc::OidAllocator;
use crate::cache::NodeCache;
use crate::load::LoadTracker;
use crate::node::{Bound, InnerNode, LeafNode, Node};
use crate::replica::{execute_replication, put_node_all, PlacementTracker, ReplicaMap};
use crate::tree::fetch_node;

/// Why a split was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitReason {
    /// The node exceeded its size bound.
    Size,
    /// The node became an access hot spot.
    Load,
}

/// A request for the splitter to split one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitRequest {
    /// Tree containing the node.
    pub tree: TreeId,
    /// The node to split.
    pub oid: Oid,
    /// Why the split was requested.
    pub reason: SplitReason,
}

/// Everything the split machinery needs, independent of the engine that
/// spawned it (so the splitter thread does not keep the engine alive).
#[derive(Clone)]
pub(crate) struct SplitContext {
    pub(crate) kv: KvClient,
    pub(crate) cfg: DbtConfig,
    pub(crate) cache: Arc<NodeCache>,
    pub(crate) load: Arc<LoadTracker>,
    pub(crate) alloc: OidAllocator,
    pub(crate) stats: StatsRegistry,
    pub(crate) replicas: Arc<ReplicaMap>,
    pub(crate) placement: Arc<PlacementTracker>,
}

impl SplitContext {
    /// Chooses the least-loaded server as the placement target for the new
    /// node of a load split, if hot-node migration is enabled.  "Least
    /// loaded" is judged over the window since the previous placement
    /// decision (see [`PlacementTracker`]), not over cumulative totals,
    /// which would forever favour whichever server started latest.
    fn pick_target_server(&self) -> Option<ServerId> {
        if !self.cfg.migrate_hot_nodes {
            return None;
        }
        let n = self.kv.num_servers();
        let loads = self.placement.snapshot(&self.stats, n);
        (0..n).min_by_key(|i| loads[*i])
    }

    /// Allocates the object id for the new (right) half of a split.
    fn new_oid(&self, tree: TreeId, load_split: bool) -> Result<Oid> {
        if load_split {
            if let Some(target) = self.pick_target_server() {
                return self.alloc.allocate_on_server(tree, target);
            }
        }
        self.alloc.allocate(tree)
    }
}

/// Splits the node at `path[idx]` inside the caller's transaction, updating
/// its parent and cascading upward if the parent becomes over-full.
///
/// `path` is the chain of object ids from the root (`path[0] == ROOT_OID`)
/// down to the node; it must have been built from nodes read in the same
/// transaction (or, for the synchronous path, the search that produced it).
pub(crate) fn split_node_in_txn(
    ctx: &SplitContext,
    txn: &Txn,
    tree: TreeId,
    path: &[Oid],
    idx: usize,
    reason: SplitReason,
) -> Result<()> {
    let oid = path[idx];
    let mut node = fetch_node(txn, tree, oid)?
        .ok_or_else(|| Error::Internal(format!("node {tree}:{oid} vanished during split")))?;
    // A split retires the node's replica set: the halves cover different key
    // ranges, so the old copies are meaningless.  Delete the replica objects
    // in the same transaction (atomic with the split) and let the halves
    // start unreplicated — if they stay hot, the load tracker re-promotes
    // them.
    if !node.replicas().is_empty() {
        for r in node.replicas() {
            txn.delete(ObjectId::new(tree, *r))?;
        }
        node.replicas_mut().clear();
        ctx.replicas.forget(tree, oid);
    }
    match node {
        Node::Leaf(mut leaf) => {
            if leaf.len() < 2 {
                return Ok(());
            }
            if reason == SplitReason::Size && leaf.len() <= ctx.cfg.leaf_max_cells {
                // Someone else already split it.
                ctx.stats.counter("dbt.split_skipped").inc();
                return Ok(());
            }
            let mid = leaf.len() / 2;
            // Cell keys are shared bytes, so the separator and every
            // bound/fence clone below is a reference-count bump, not a copy.
            let split_key = leaf.cells[mid].0.clone();
            let right_cells = leaf.cells.split_off(mid);
            let new_oid = ctx.new_oid(tree, reason == SplitReason::Load)?;
            let right = LeafNode {
                lower: Bound::Key(split_key.clone()),
                upper: leaf.upper.clone(),
                cells: right_cells,
                next: leaf.next,
                replicas: Vec::new(),
            };
            leaf.upper = Bound::Key(split_key.clone());
            leaf.next = Some(new_oid);
            if reason == SplitReason::Load {
                ctx.stats.counter("dbt.load_splits").inc();
            }
            finish_split(
                ctx,
                txn,
                tree,
                path,
                idx,
                oid,
                Node::Leaf(leaf),
                new_oid,
                Node::Leaf(right),
                split_key,
            )
        }
        Node::Inner(mut inner) => {
            if inner.len() < 3 {
                return Ok(());
            }
            if reason == SplitReason::Size && inner.len() <= ctx.cfg.inner_max_children {
                ctx.stats.counter("dbt.split_skipped").inc();
                return Ok(());
            }
            let midc = inner.children.len() / 2;
            let split_key = inner.keys[midc - 1].clone();
            let right_children = inner.children.split_off(midc);
            let right_keys = inner.keys.split_off(midc);
            inner.keys.pop(); // the promoted separator
            let new_oid = ctx.new_oid(tree, false)?;
            let right = InnerNode {
                lower: Bound::Key(split_key.clone()),
                upper: inner.upper.clone(),
                keys: right_keys,
                children: right_children,
                height: inner.height,
                replicas: Vec::new(),
            };
            inner.upper = Bound::Key(split_key.clone());
            finish_split(
                ctx,
                txn,
                tree,
                path,
                idx,
                oid,
                Node::Inner(inner),
                new_oid,
                Node::Inner(right),
                split_key,
            )
        }
    }
}

/// Writes the two halves of a split and links the new half into the parent
/// (or grows the tree by one level when the root itself split).
#[allow(clippy::too_many_arguments)]
fn finish_split(
    ctx: &SplitContext,
    txn: &Txn,
    tree: TreeId,
    path: &[Oid],
    idx: usize,
    left_oid: Oid,
    left: Node,
    right_oid: Oid,
    right: Node,
    split_key: Bytes,
) -> Result<()> {
    ctx.stats.counter("dbt.splits").inc();
    if idx == 0 {
        // The root split.  The root keeps its well-known object id, so both
        // halves move to fresh ids and the root becomes (or stays) an inner
        // node one level taller.
        debug_assert_eq!(left_oid, ROOT_OID);
        let new_left_oid = ctx.alloc.allocate(tree)?;
        let height = left.height() + 1;
        // If the left half is a leaf, its sibling pointer must reference the
        // right half (it was set before the halves were materialised).
        let left = match left {
            Node::Leaf(mut l) => {
                l.next = Some(right_oid);
                Node::Leaf(l)
            }
            other => other,
        };
        let new_root = InnerNode {
            lower: Bound::NegInf,
            upper: Bound::PosInf,
            keys: vec![split_key],
            children: vec![new_left_oid, right_oid],
            height,
            replicas: Vec::new(),
        };
        txn.put(ObjectId::new(tree, new_left_oid), left.encode())?;
        txn.put(ObjectId::new(tree, right_oid), right.encode())?;
        txn.put(
            ObjectId::new(tree, ROOT_OID),
            Node::Inner(new_root).encode(),
        )?;
        ctx.cache.invalidate(tree, ROOT_OID);
        ctx.load.forget(tree, ROOT_OID);
        ctx.stats.counter("dbt.root_splits").inc();
        return Ok(());
    }

    txn.put(ObjectId::new(tree, left_oid), left.encode())?;
    txn.put(ObjectId::new(tree, right_oid), right.encode())?;

    let parent_oid = path[idx - 1];
    let parent = fetch_node(txn, tree, parent_oid)?
        .ok_or_else(|| Error::Internal(format!("parent {tree}:{parent_oid} vanished")))?
        .into_inner()?;
    let mut parent = parent;
    let child_pos = parent
        .children
        .iter()
        .position(|c| *c == left_oid)
        .ok_or_else(|| {
            Error::Internal(format!(
                "parent {parent_oid} no longer references {left_oid}"
            ))
        })?;
    parent.insert_child_after(child_pos, split_key, right_oid);
    let parent_len = parent.len();
    // The parent keeps its replica set across the child split, so its
    // rewrite must fan out to every copy (write-all).
    put_node_all(
        txn,
        tree,
        parent_oid,
        &Node::Inner(parent),
        &ctx.stats.counter("dbt.replica_fanout_writes"),
    )?;
    ctx.cache.invalidate(tree, parent_oid);
    ctx.load.forget(tree, left_oid);

    if parent_len > ctx.cfg.inner_max_children {
        split_node_in_txn(ctx, txn, tree, path, idx - 1, SplitReason::Size)?;
    }
    Ok(())
}

/// Performs a delegated split in its own transaction, retrying a few times
/// on write-write conflicts.  Returns true if a split was committed.
pub(crate) fn execute_delegated_split(ctx: &SplitContext, req: &SplitRequest) -> Result<bool> {
    const ATTEMPTS: usize = 4;
    for attempt in 0..ATTEMPTS {
        let txn = ctx.kv.begin();
        let Some(target) = fetch_node(&txn, req.tree, req.oid)? else {
            txn.abort();
            return Ok(false);
        };
        // Re-check that the split is still warranted at this snapshot.
        let nav_key: Bytes = match &target {
            Node::Leaf(l) => {
                if l.len() < 2
                    || (req.reason == SplitReason::Size && l.len() <= ctx.cfg.leaf_max_cells)
                {
                    txn.abort();
                    ctx.stats.counter("dbt.split_skipped").inc();
                    return Ok(false);
                }
                match &l.lower {
                    Bound::Key(k) => k.clone(),
                    _ => Bytes::new(),
                }
            }
            Node::Inner(i) => {
                if i.len() <= ctx.cfg.inner_max_children {
                    txn.abort();
                    ctx.stats.counter("dbt.split_skipped").inc();
                    return Ok(false);
                }
                match &i.lower {
                    Bound::Key(k) => k.clone(),
                    _ => Bytes::new(),
                }
            }
        };

        // Build the root-to-target path within this transaction's snapshot.
        let mut path: Vec<Oid> = vec![ROOT_OID];
        let found = loop {
            let cur = *path.last().expect("path never empty");
            if cur == req.oid {
                break true;
            }
            if path.len() > 64 {
                break false;
            }
            match fetch_node(&txn, req.tree, cur)? {
                Some(Node::Inner(inner)) => path.push(inner.child_for(&nav_key)),
                // Reached a leaf (or a hole) that is not the target: the
                // tree changed since the request was made.
                _ => break false,
            }
        };
        if !found {
            txn.abort();
            ctx.stats.counter("dbt.split_skipped").inc();
            return Ok(false);
        }

        let idx = path.len() - 1;
        split_node_in_txn(ctx, &txn, req.tree, &path, idx, req.reason)?;
        match txn.commit() {
            Ok(_) => {
                ctx.load.forget(req.tree, req.oid);
                // Splits are the signal that this tree sees real traffic:
                // (re-)establish the root's replica set if replication is on
                // ("root and upper inner nodes replicate by default").  A
                // root split just dropped the old root replicas, and on a
                // tree's first split this is what bootstraps them.  No-op if
                // the root already has its full factor.
                let _ = execute_replication(ctx, req.tree, ROOT_OID);
                return Ok(true);
            }
            Err(e) if e.is_retryable() && attempt + 1 < ATTEMPTS => {
                ctx.stats.counter("dbt.split_retries").inc();
                continue;
            }
            Err(e) if e.is_retryable() => {
                ctx.stats.counter("dbt.split_abandoned").inc();
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

/// Kind of maintenance work, used to deduplicate the queue per node: a
/// pending split of a node must not suppress a replication request for it
/// (or vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum MaintKind {
    Split,
    Replicate,
}

/// A unit of background tree maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MaintRequest {
    /// Split an over-full or write-hot node.
    Split(SplitRequest),
    /// Promote a read-hot node to a replica set.
    Replicate { tree: TreeId, oid: Oid },
}

impl MaintRequest {
    fn dedup_key(&self) -> (TreeId, Oid, MaintKind) {
        match self {
            MaintRequest::Split(s) => (s.tree, s.oid, MaintKind::Split),
            MaintRequest::Replicate { tree, oid } => (*tree, *oid, MaintKind::Replicate),
        }
    }
}

/// Handle to the background maintenance task (historically the "splitter";
/// it now also executes replica promotions).
pub(crate) struct Splitter {
    tx: Option<Sender<MaintRequest>>,
    pending: Arc<Mutex<HashSet<(TreeId, Oid, MaintKind)>>>,
    handle: Option<JoinHandle<()>>,
}

impl Splitter {
    /// Spawns the maintenance thread.
    pub(crate) fn spawn(ctx: SplitContext) -> Splitter {
        let (tx, rx) = unbounded::<MaintRequest>();
        let pending: Arc<Mutex<HashSet<(TreeId, Oid, MaintKind)>>> =
            Arc::new(Mutex::new(HashSet::new()));
        let pending_worker = Arc::clone(&pending);
        let handle = std::thread::Builder::new()
            .name("ydbt-splitter".to_string())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    // Failures are recorded but must not kill the worker: a
                    // failed split leaves an over-full node that a later
                    // request (or the next insert) will pick up again, and a
                    // failed promotion leaves the node unreplicated — hot
                    // traffic will flag it again.
                    match &req {
                        MaintRequest::Split(split) => {
                            if let Err(e) = execute_delegated_split(&ctx, split) {
                                ctx.stats.counter("dbt.split_errors").inc();
                                let _ = e;
                            }
                        }
                        MaintRequest::Replicate { tree, oid } => {
                            if let Err(e) = execute_replication(&ctx, *tree, *oid) {
                                ctx.stats.counter("dbt.replica_errors").inc();
                                let _ = e;
                            }
                        }
                    }
                    pending_worker.lock().remove(&req.dedup_key());
                }
            })
            .expect("failed to spawn splitter thread");
        Splitter {
            tx: Some(tx),
            pending,
            handle: Some(handle),
        }
    }

    /// Enqueues a maintenance request, deduplicating per node and kind.
    pub(crate) fn request(&self, req: MaintRequest) {
        let mut pending = self.pending.lock();
        let key = req.dedup_key();
        if pending.insert(key) {
            if let Some(tx) = &self.tx {
                if tx.send(req).is_err() {
                    pending.remove(&key);
                }
            }
        }
    }

    /// Number of requests not yet processed.
    pub(crate) fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Blocks until the splitter has drained its queue (tests and benchmark
    /// loading phases use this to reach a quiescent tree).
    pub(crate) fn wait_idle(&self) {
        while self.pending_count() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for Splitter {
    fn drop(&mut self) {
        // Disconnect the channel so the worker exits, then join it.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}
