//! Simulated cluster and RPC substrate for the Yesquel reproduction.
//!
//! The original Yesquel deployment runs storage servers on separate machines
//! and clients talk to them over a datacenter network.  This crate provides
//! the equivalent substrate inside one process:
//!
//! * a [`Service`] trait implemented by a storage-server "process" (the
//!   transactional key-value server in `yesquel-kv`),
//! * [`Transport`] implementations that deliver requests to a server —
//!   either by direct function call ([`DirectTransport`], lowest overhead,
//!   used for unit tests and throughput experiments) or through per-server
//!   worker threads fed by bounded channels ([`ThreadedTransport`], which
//!   models per-server CPU capacity and request queueing),
//! * a [`NetworkModel`] that charges each message a configurable latency and
//!   bandwidth cost, either merely accounted (for simulated-latency tables)
//!   or actually slept (for closed-loop latency experiments), and
//! * per-server load metrics used by the load-balancing experiments.
//!
//! Substitution note (see DESIGN.md): replacing real machines with in-process
//! shards preserves everything the paper's evaluation measures about the
//! *algorithms* — RPC counts per operation, contention on hot nodes, load
//! imbalance across servers, scalability with the number of servers — while
//! absolute wall-clock numbers necessarily differ.

pub mod batch;
pub mod cluster;
pub mod fault;
pub mod netmodel;
pub mod transport;

pub use batch::{BatchableService, BatchingTransport};
pub use cluster::{Cluster, ClusterBuilder};
pub use fault::{FaultPlan, FaultyTransport};
pub use netmodel::NetworkModel;
pub use transport::{DirectTransport, Service, ThreadedTransport, Transport, TransportKind};
