//! Request batching: coalescing same-server requests into one frame.
//!
//! [`BatchingTransport`] is the RPC-plane analogue of the write-ahead log's
//! group commit.  The first caller to find a server's queue idle becomes the
//! batch leader: it waits a small window for concurrent callers to pile
//! their requests in, then ships the whole group to the inner transport as
//! one multi-request frame.  One transport call — one network-model round
//! trip, one queue handoff on a threaded transport — carries many logical
//! requests, amortising per-message costs exactly as one fsync amortises
//! over a commit group.
//!
//! The decorator composes below [`crate::FaultyTransport`]: faults are drawn
//! per *logical* message (a dropped request is dropped before it can join a
//! batch, a duplicate joins as its own logical message), so chaos tests keep
//! their per-message semantics while survivors still coalesce.  A batch of
//! one is sent bare — no envelope, no overhead — which keeps single-threaded
//! callers at exactly one inner call per request.

use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use yesquel_common::stats::{Counter, Histogram, StatsRegistry};
use yesquel_common::{Error, Result, RpcBatchConfig, ServerId};

use crate::transport::{Service, Transport};

/// A [`Service`] whose request type can carry several requests in one frame.
///
/// `make_batch` wraps a group of requests into one envelope request;
/// `split_batch` recovers the per-request responses from the envelope
/// response (in the same order), returning `None` if the response is not an
/// envelope — the transport surfaces that as an internal error rather than
/// misdelivering responses.
pub trait BatchableService: Service {
    /// Wraps `reqs` into one envelope request.
    fn make_batch(reqs: Vec<Self::Request>) -> Self::Request;
    /// Unwraps an envelope response into per-request responses.
    fn split_batch(resp: Self::Response) -> Option<Vec<Self::Response>>;
}

/// A request parked with the batch leader, paired with the channel its
/// caller is blocked on.
struct Parked<S: Service> {
    req: S::Request,
    reply: Sender<Result<S::Response>>,
}

/// Per-server coalescing state: whether a leader is collecting, and the
/// requests parked behind it.
struct ServerQueue<S: Service> {
    leader_active: bool,
    parked: Vec<Parked<S>>,
}

/// Transport decorator that coalesces same-server requests issued within a
/// small window into one multi-request frame.  See the module docs.
pub struct BatchingTransport<S: BatchableService> {
    inner: Arc<dyn Transport<S>>,
    queues: Vec<Mutex<ServerQueue<S>>>,
    window: std::time::Duration,
    /// Nagle-style extra wait: a leader whose window closed with no
    /// followers re-arms and lingers up to this long for one to arrive
    /// before shipping solo.  Zero disables lingering.
    linger: std::time::Duration,
    max_batch: usize,
    /// Frames that carried ≥ 2 logical requests.
    batches: Arc<Counter>,
    /// Logical requests that travelled inside a multi-request frame.
    batched_requests: Arc<Counter>,
    /// Leader rounds that found no companions and sent the request bare.
    solo: Arc<Counter>,
    /// Leader rounds that lingered past the window hoping for a follower.
    linger_waits: Arc<Counter>,
    /// Logical requests per shipped frame (solo frames count as 1; recorded
    /// only while `Obs::timing_on`).
    occupancy: Arc<Histogram>,
    registry: StatsRegistry,
}

impl<S: BatchableService> BatchingTransport<S> {
    /// Wraps `inner`, coalescing per the given window and size cap.
    pub fn new(
        inner: Arc<dyn Transport<S>>,
        cfg: RpcBatchConfig,
        registry: &StatsRegistry,
    ) -> Self {
        let queues = (0..inner.num_servers())
            .map(|_| {
                Mutex::new(ServerQueue {
                    leader_active: false,
                    parked: Vec::new(),
                })
            })
            .collect();
        BatchingTransport {
            inner,
            queues,
            window: std::time::Duration::from_micros(cfg.window_us),
            linger: std::time::Duration::from_micros(cfg.linger_us),
            max_batch: cfg.max_batch.max(2),
            batches: registry.counter("rpc.batches"),
            batched_requests: registry.counter("rpc.batched_requests"),
            solo: registry.counter("rpc.batch_solo"),
            linger_waits: registry.counter("rpc.batch_linger_waits"),
            occupancy: registry.histogram("rpc.batch_occupancy"),
            registry: registry.clone(),
        }
    }

    /// Ships one group: `mine` (the leader's own request, first in the
    /// frame) plus the parked followers.  Distributes each follower's
    /// response — or a clone of the frame-level error — onto its reply
    /// channel, and returns the leader's own result.
    fn ship(
        &self,
        server: ServerId,
        mine: S::Request,
        followers: Vec<Parked<S>>,
    ) -> Result<S::Response> {
        let timing = self.registry.obs().timing_on();
        if followers.is_empty() {
            self.solo.inc();
            if timing {
                self.occupancy.record(1);
            }
            return self.inner.call(server, mine);
        }
        let total = followers.len() + 1;
        if timing {
            self.occupancy.record(total as u64);
        }
        let mut reqs = Vec::with_capacity(total);
        reqs.push(mine);
        let mut replies = Vec::with_capacity(followers.len());
        for p in followers {
            reqs.push(p.req);
            replies.push(p.reply);
        }
        self.batches.inc();
        self.batched_requests.add(total as u64);
        let outcome: Result<Vec<S::Response>> = match self.inner.call(server, S::make_batch(reqs)) {
            Ok(resp) => match S::split_batch(resp) {
                Some(resps) if resps.len() == total => Ok(resps),
                Some(resps) => Err(Error::Internal(format!(
                    "batch of {total} answered with {} responses",
                    resps.len()
                ))),
                None => Err(Error::Internal(
                    "batch answered with a non-batch response".into(),
                )),
            },
            Err(e) => Err(e),
        };
        match outcome {
            Ok(mut resps) => {
                // First response is the leader's; the rest pair off with the
                // followers in parking order.
                let rest = resps.split_off(1);
                for (reply, resp) in replies.into_iter().zip(rest) {
                    let _ = reply.send(Ok(resp));
                }
                Ok(resps.pop().expect("leader response present"))
            }
            Err(e) => {
                // The whole frame failed (dropped, server down, malformed):
                // every logical request shares its fate.
                for reply in replies {
                    let _ = reply.send(Err(e.clone()));
                }
                Err(e)
            }
        }
    }
}

impl<S: BatchableService> Transport<S> for BatchingTransport<S> {
    fn call(&self, server: ServerId, req: S::Request) -> Result<S::Response> {
        let Some(queue) = self.queues.get(server) else {
            return self.inner.call(server, req);
        };
        {
            let mut q = queue.lock();
            if q.leader_active {
                if q.parked.len() + 1 < self.max_batch {
                    // A leader is collecting: park behind it and wait for
                    // our share of its frame.
                    let (tx, rx) = bounded(1);
                    q.parked.push(Parked { req, reply: tx });
                    drop(q);
                    return rx
                        .recv()
                        .map_err(|_| Error::Internal("batch leader vanished".into()))?;
                }
                // The forming frame is full: send bare rather than stall
                // behind a frame this request cannot join.
                drop(q);
                self.solo.inc();
                return self.inner.call(server, req);
            }
            q.leader_active = true;
        }
        // Leader: give concurrent callers the window to pile in, then drain
        // whatever arrived and ship it as one frame.
        if !self.window.is_zero() {
            std::thread::sleep(self.window);
        }
        // Nagle-style linger: if the window closed with nobody parked, stay
        // leader a little longer (polling in slices up to `linger`) rather
        // than concede immediately to a solo send.  Trades the leader's
        // latency for fewer frames under trickling concurrency; off by
        // default (`linger_us = 0`).
        if !self.linger.is_zero() && queue.lock().parked.is_empty() {
            self.linger_waits.inc();
            let deadline = std::time::Instant::now() + self.linger;
            let slice = (self.linger / 8).max(std::time::Duration::from_micros(5));
            loop {
                let now = std::time::Instant::now();
                if now >= deadline {
                    break;
                }
                std::thread::sleep(slice.min(deadline - now));
                if !queue.lock().parked.is_empty() {
                    break;
                }
            }
        }
        let followers = {
            let mut q = queue.lock();
            q.leader_active = false;
            std::mem::take(&mut q.parked)
        };
        self.ship(server, req, followers)
    }

    fn num_servers(&self) -> usize {
        self.inner.num_servers()
    }

    fn fanout_profitable(&self) -> bool {
        self.inner.fanout_profitable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetworkModel;
    use crate::transport::DirectTransport;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Echo service whose batch envelope is a `Vec` tagged by a sentinel
    /// first element; counts inner calls so tests can observe coalescing.
    struct Echo {
        calls: AtomicU64,
    }

    const TAG: u64 = u64::MAX;

    impl Service for Echo {
        type Request = Vec<u64>;
        type Response = Vec<u64>;
        fn call(&self, req: Vec<u64>) -> Vec<u64> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            req
        }
    }

    impl BatchableService for Echo {
        fn make_batch(reqs: Vec<Vec<u64>>) -> Vec<u64> {
            let mut out = vec![TAG];
            for r in reqs {
                out.push(r.len() as u64);
                out.extend(r);
            }
            out
        }
        fn split_batch(resp: Vec<u64>) -> Option<Vec<Vec<u64>>> {
            if resp.first() != Some(&TAG) {
                return None;
            }
            let mut out = Vec::new();
            let mut i = 1;
            while i < resp.len() {
                let n = resp[i] as usize;
                out.push(resp[i + 1..i + 1 + n].to_vec());
                i += 1 + n;
            }
            Some(out)
        }
    }

    fn deployment(window_us: u64) -> (Arc<BatchingTransport<Echo>>, Arc<Echo>, StatsRegistry) {
        deployment_linger(window_us, 0)
    }

    fn deployment_linger(
        window_us: u64,
        linger_us: u64,
    ) -> (Arc<BatchingTransport<Echo>>, Arc<Echo>, StatsRegistry) {
        let reg = StatsRegistry::new();
        let srv = Arc::new(Echo {
            calls: AtomicU64::new(0),
        });
        let inner = Arc::new(DirectTransport::new(
            vec![Arc::clone(&srv)],
            NetworkModel::free(reg.clone()),
            reg.clone(),
        ));
        let t = Arc::new(BatchingTransport::new(
            inner,
            RpcBatchConfig {
                window_us,
                max_batch: 8,
                linger_us,
            },
            &reg,
        ));
        (t, srv, reg)
    }

    #[test]
    fn solo_requests_skip_the_envelope() {
        let (t, srv, reg) = deployment(0);
        for i in 0..10u64 {
            assert_eq!(t.call(0, vec![i]).unwrap(), vec![i]);
        }
        assert_eq!(srv.calls.load(Ordering::SeqCst), 10);
        assert_eq!(reg.counter("rpc.batched_requests").get(), 0);
        assert_eq!(reg.counter("rpc.batch_solo").get(), 10);
    }

    #[test]
    fn concurrent_requests_coalesce() {
        let (t, srv, reg) = deployment(2_000);
        let mut handles = Vec::new();
        for c in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..20u64 {
                    let v = c * 100 + i;
                    assert_eq!(t.call(0, vec![v]).unwrap(), vec![v]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = 8 * 20;
        let batched = reg.counter("rpc.batched_requests").get();
        let solo = reg.counter("rpc.batch_solo").get();
        assert_eq!(batched + solo, total, "every logical request accounted");
        assert!(batched > 0, "a 2ms window with 8 threads must coalesce");
        // Coalescing means strictly fewer inner calls than logical requests.
        assert!(srv.calls.load(Ordering::SeqCst) < total);
    }

    #[test]
    fn unknown_server_propagates_inner_error() {
        let (t, _srv, _reg) = deployment(0);
        assert!(t.call(5, vec![1]).is_err());
    }

    #[test]
    fn linger_rescues_a_trickling_follower() {
        // Window 0 closes empty every time; a generous linger lets a
        // follower that arrives shortly after still join the frame.
        let (t, srv, reg) = deployment_linger(0, 20_000);
        let t2 = Arc::clone(&t);
        let follower = std::thread::spawn(move || {
            // Arrive well inside the leader's linger.
            std::thread::sleep(std::time::Duration::from_millis(2));
            t2.call(0, vec![7]).unwrap()
        });
        assert_eq!(t.call(0, vec![3]).unwrap(), vec![3]);
        assert_eq!(follower.join().unwrap(), vec![7]);
        assert!(reg.counter("rpc.batch_linger_waits").get() >= 1);
        // Both logical requests travelled in one frame.
        assert_eq!(reg.counter("rpc.batched_requests").get(), 2);
        assert_eq!(srv.calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_linger_never_waits() {
        let (t, _srv, reg) = deployment(0);
        t.call(0, vec![1]).unwrap();
        assert_eq!(reg.counter("rpc.batch_linger_waits").get(), 0);
    }
}
