//! RPC transports: how a client request reaches a storage server.

use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use yesquel_common::obs::clock;
use yesquel_common::stats::{Counter, Histogram, StatsRegistry};
use yesquel_common::{Error, Result, ServerId};

use crate::netmodel::NetworkModel;

/// A storage-server "process": receives a request, returns a response.
///
/// Implementations must be callable concurrently from many client threads;
/// internal synchronization is the server's responsibility (exactly as a
/// real multi-threaded RPC server would).
pub trait Service: Send + Sync + 'static {
    /// Request message type.
    type Request: Send + 'static;
    /// Response message type.
    type Response: Send + 'static;

    /// Handles one request.
    fn call(&self, req: Self::Request) -> Self::Response;

    /// Approximate wire size of a request, for the bandwidth model.
    fn request_wire_size(_req: &Self::Request) -> usize {
        64
    }

    /// Approximate wire size of a response, for the bandwidth model.
    fn response_wire_size(_resp: &Self::Response) -> usize {
        64
    }
}

/// Which transport a cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Requests are executed by a direct function call on the caller's
    /// thread.  Fastest; models a server with unbounded worker threads.
    #[default]
    Direct,
    /// Requests are queued to a fixed pool of worker threads per server,
    /// modelling bounded per-server CPU capacity and queueing delay.
    Threaded {
        /// Number of worker threads per storage server.
        workers_per_server: usize,
    },
}

/// A connection from clients to every server of the cluster.
pub trait Transport<S: Service>: Send + Sync {
    /// Sends `req` to server `server` and waits for its response.
    ///
    /// Every call counts as one RPC round trip for the network model.
    fn call(&self, server: ServerId, req: S::Request) -> Result<S::Response>;

    /// Number of servers reachable through this transport.
    fn num_servers(&self) -> usize;

    /// Whether issuing independent calls from several threads can finish
    /// sooner than issuing them back to back on one thread.  False for a
    /// transport whose `call` is a plain synchronous function call (nothing
    /// overlaps, and spawning threads only adds overhead); true when calls
    /// spend wall-clock time blocked — on server worker queues, slept
    /// network latency, or injected faults and retry backoffs.  The 2PC
    /// coordinator consults this under [`CommitFanout::Auto`].
    ///
    /// [`CommitFanout::Auto`]: yesquel_common::CommitFanout::Auto
    fn fanout_profitable(&self) -> bool {
        false
    }
}

/// Book-keeping shared by both transports.
///
/// Per-server request counts are exposed both through the vector returned by
/// `per_server_request_counts` and as registry counters named
/// `rpc.server.<id>.requests`, so that code holding only the shared
/// [`StatsRegistry`] (e.g. the load-imbalance experiment) can read them.
struct TransportStats {
    registry: StatsRegistry,
    // Every handle below is resolved once here: `record` runs on every RPC,
    // and a by-name lookup per call is a mutex acquisition plus a string
    // allocation.
    calls: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    simulated_latency_us: Arc<Histogram>,
    /// Time a request waited in a server worker queue before being picked
    /// up (threaded transport; recorded only while `Obs::timing_on`).
    queue_us: Arc<Histogram>,
    /// Time the server object spent handling a request (recorded only while
    /// `Obs::timing_on`).
    service_us: Arc<Histogram>,
    per_server_requests: Vec<Arc<Counter>>,
}

impl TransportStats {
    fn new(registry: StatsRegistry, nservers: usize) -> Self {
        let per_server_requests = (0..nservers)
            .map(|i| registry.counter(&format!("rpc.server.{i}.requests")))
            .collect();
        TransportStats {
            calls: registry.counter("rpc.calls"),
            bytes_sent: registry.counter("rpc.bytes_sent"),
            bytes_received: registry.counter("rpc.bytes_received"),
            simulated_latency_us: registry.histogram("rpc.simulated_latency_us"),
            queue_us: registry.histogram("rpc.queue_us"),
            service_us: registry.histogram("rpc.service_us"),
            registry,
            per_server_requests,
        }
    }

    fn timing_on(&self) -> bool {
        self.registry.obs().timing_on()
    }

    fn record(&self, server: ServerId, req_bytes: usize, resp_bytes: usize, net: &NetworkModel) {
        self.calls.inc();
        self.bytes_sent.add(req_bytes as u64);
        self.bytes_received.add(resp_bytes as u64);
        if let Some(c) = self.per_server_requests.get(server) {
            c.inc();
        }
        let lat = net.charge_round_trip(req_bytes, resp_bytes);
        if lat > 0 {
            self.simulated_latency_us.record(lat);
        }
    }
}

/// Transport that executes requests by calling the server object directly on
/// the caller's thread.
pub struct DirectTransport<S: Service> {
    servers: Vec<Arc<S>>,
    net: NetworkModel,
    stats: TransportStats,
}

impl<S: Service> DirectTransport<S> {
    /// Creates a direct transport over the given server objects.
    pub fn new(servers: Vec<Arc<S>>, net: NetworkModel, registry: StatsRegistry) -> Self {
        let stats = TransportStats::new(registry, servers.len());
        DirectTransport {
            servers,
            net,
            stats,
        }
    }

    /// Requests handled so far by each server (for load-imbalance reports).
    pub fn per_server_request_counts(&self) -> Vec<u64> {
        self.stats
            .per_server_requests
            .iter()
            .map(|c| c.get())
            .collect()
    }
}

impl<S: Service> Transport<S> for DirectTransport<S> {
    fn call(&self, server: ServerId, req: S::Request) -> Result<S::Response> {
        let srv = self
            .servers
            .get(server)
            .ok_or_else(|| Error::ServerUnavailable(format!("no server {server}")))?;
        let req_bytes = S::request_wire_size(&req);
        let t0 = self.stats.timing_on().then(clock::now);
        let resp = srv.call(req);
        if let Some(t0) = t0 {
            self.stats.service_us.record(clock::elapsed_us(t0));
        }
        let resp_bytes = S::response_wire_size(&resp);
        self.stats.record(server, req_bytes, resp_bytes, &self.net);
        Ok(resp)
    }

    fn num_servers(&self) -> usize {
        self.servers.len()
    }

    fn fanout_profitable(&self) -> bool {
        // Direct calls only overlap when each one actually sleeps the
        // modelled latency; otherwise they are pure CPU and parallel fan-out
        // would just pay thread handoffs.
        let cfg = self.net.config();
        cfg.sleep_latency && cfg.one_way_latency_us > 0
    }
}

/// A request queued to a server worker thread, paired with the channel on
/// which the worker sends back the response.
struct Envelope<S: Service> {
    req: S::Request,
    reply: Sender<S::Response>,
    /// Stamped at enqueue when `Obs::timing_on`; the worker turns it into a
    /// queue-wait observation.  `None` (the default) costs nothing.
    enqueued_at: Option<std::time::Instant>,
}

/// Transport that runs a fixed pool of worker threads per server and
/// delivers requests through bounded channels.
///
/// This models the paper's deployment more closely than [`DirectTransport`]:
/// each storage server has a bounded amount of CPU, so when many clients
/// target one server (for example, the root server when client caching is
/// disabled) requests queue up and per-operation latency grows, while other
/// servers sit idle.
pub struct ThreadedTransport<S: Service> {
    queues: Vec<Sender<Envelope<S>>>,
    net: NetworkModel,
    stats: TransportStats,
    // Worker threads are detached; they exit when the queue senders are
    // dropped (the channel disconnects and `recv` returns Err).
    _servers: Vec<Arc<S>>,
}

impl<S: Service> ThreadedTransport<S> {
    /// Creates the transport and spawns `workers_per_server` threads per
    /// server.
    pub fn new(
        servers: Vec<Arc<S>>,
        workers_per_server: usize,
        net: NetworkModel,
        registry: StatsRegistry,
    ) -> Self {
        assert!(
            workers_per_server >= 1,
            "need at least one worker per server"
        );
        let stats = TransportStats::new(registry, servers.len());
        // Modelled per-request service time: each request occupies this
        // worker for `service_time_us`, capping per-server throughput at
        // `workers_per_server / service_time` independent of host CPUs.
        let net_cfg = net.config();
        let service_us = if net_cfg.sleep_latency {
            net_cfg.service_time_us
        } else {
            0
        };
        let mut queues = Vec::with_capacity(servers.len());
        for (sid, srv) in servers.iter().enumerate() {
            let (tx, rx) = bounded::<Envelope<S>>(1024);
            for w in 0..workers_per_server {
                let rx = rx.clone();
                let srv = Arc::clone(srv);
                let queue_hist = Arc::clone(&stats.queue_us);
                let service_hist = Arc::clone(&stats.service_us);
                std::thread::Builder::new()
                    .name(format!("yesquel-server-{sid}-worker-{w}"))
                    .spawn(move || {
                        while let Ok(env) = rx.recv() {
                            // The enqueue stamp doubles as the timing switch:
                            // absent (timing off) the worker reads no clock.
                            let t0 = env.enqueued_at.map(|at| {
                                queue_hist.record(clock::elapsed_us(at));
                                clock::now()
                            });
                            if service_us > 0 {
                                std::thread::sleep(std::time::Duration::from_micros(service_us));
                            }
                            let resp = srv.call(env.req);
                            if let Some(t0) = t0 {
                                service_hist.record(clock::elapsed_us(t0));
                            }
                            // The client may have given up; ignore send errors.
                            let _ = env.reply.send(resp);
                        }
                    })
                    .expect("failed to spawn server worker thread");
            }
            queues.push(tx);
        }
        ThreadedTransport {
            queues,
            net,
            stats,
            _servers: servers,
        }
    }

    /// Requests handled so far by each server (for load-imbalance reports).
    pub fn per_server_request_counts(&self) -> Vec<u64> {
        self.stats
            .per_server_requests
            .iter()
            .map(|c| c.get())
            .collect()
    }
}

impl<S: Service> Transport<S> for ThreadedTransport<S> {
    fn call(&self, server: ServerId, req: S::Request) -> Result<S::Response> {
        let q = self
            .queues
            .get(server)
            .ok_or_else(|| Error::ServerUnavailable(format!("no server {server}")))?;
        let req_bytes = S::request_wire_size(&req);
        let (reply_tx, reply_rx) = bounded(1);
        q.send(Envelope {
            req,
            reply: reply_tx,
            enqueued_at: self.stats.timing_on().then(clock::now),
        })
        .map_err(|_| Error::ServerUnavailable(format!("server {server} shut down")))?;
        let resp = reply_rx
            .recv()
            .map_err(|_| Error::ServerUnavailable(format!("server {server} dropped request")))?;
        let resp_bytes = S::response_wire_size(&resp);
        self.stats.record(server, req_bytes, resp_bytes, &self.net);
        Ok(resp)
    }

    fn num_servers(&self) -> usize {
        self.queues.len()
    }

    fn fanout_profitable(&self) -> bool {
        // Calls block on per-server worker queues, so independent requests
        // to different servers genuinely proceed in parallel.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yesquel_common::NetConfig;

    /// A toy service that echoes the request plus one.
    struct AddOne;

    impl Service for AddOne {
        type Request = u64;
        type Response = u64;
        fn call(&self, req: u64) -> u64 {
            req + 1
        }
    }

    fn servers(n: usize) -> Vec<Arc<AddOne>> {
        (0..n).map(|_| Arc::new(AddOne)).collect()
    }

    #[test]
    fn direct_transport_routes_and_counts() {
        let reg = StatsRegistry::new();
        let t = DirectTransport::new(
            servers(3),
            NetworkModel::new(NetConfig::default(), reg.clone()),
            reg.clone(),
        );
        assert_eq!(t.num_servers(), 3);
        assert_eq!(t.call(0, 41).unwrap(), 42);
        assert_eq!(t.call(2, 1).unwrap(), 2);
        assert!(t.call(7, 1).is_err());
        assert_eq!(reg.counter("rpc.calls").get(), 2);
        let per = t.per_server_request_counts();
        assert_eq!(per, vec![1, 0, 1]);
    }

    #[test]
    fn threaded_transport_routes_and_counts() {
        let reg = StatsRegistry::new();
        let t = ThreadedTransport::new(
            servers(2),
            2,
            NetworkModel::new(NetConfig::default(), reg.clone()),
            reg.clone(),
        );
        assert_eq!(t.num_servers(), 2);
        for i in 0..100u64 {
            assert_eq!(t.call((i % 2) as usize, i).unwrap(), i + 1);
        }
        assert!(t.call(9, 1).is_err());
        assert_eq!(reg.counter("rpc.calls").get(), 100);
        let per = t.per_server_request_counts();
        assert_eq!(per.iter().sum::<u64>(), 100);
    }

    #[test]
    fn threaded_transport_concurrent_clients() {
        let reg = StatsRegistry::new();
        let t = Arc::new(ThreadedTransport::new(
            servers(4),
            2,
            NetworkModel::new(NetConfig::default(), reg.clone()),
            reg.clone(),
        ));
        let mut handles = Vec::new();
        for c in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let v = c * 1000 + i;
                    assert_eq!(t.call((v % 4) as usize, v).unwrap(), v + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("rpc.calls").get(), 1600);
    }
}
