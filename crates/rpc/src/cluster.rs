//! A cluster of storage servers behind a single transport handle.
//!
//! [`Cluster`] owns the server objects, the chosen [`Transport`], the
//! [`NetworkModel`] and the [`StatsRegistry`], and hands out cheap clones of
//! the transport handle to any number of clients.  It is the in-process
//! equivalent of "deploy N storage servers and give every client their
//! addresses".

use std::sync::Arc;

use yesquel_common::stats::StatsRegistry;
use yesquel_common::{NetConfig, Result, ServerId};

use crate::netmodel::NetworkModel;
use crate::transport::{DirectTransport, Service, ThreadedTransport, Transport, TransportKind};

/// Builder for a [`Cluster`].
pub struct ClusterBuilder<S: Service> {
    servers: Vec<Arc<S>>,
    kind: TransportKind,
    net: NetConfig,
    registry: StatsRegistry,
}

impl<S: Service> ClusterBuilder<S> {
    /// Starts building a cluster from already-constructed server objects.
    pub fn new(servers: Vec<Arc<S>>) -> Self {
        ClusterBuilder {
            servers,
            kind: TransportKind::Direct,
            net: NetConfig::default(),
            registry: StatsRegistry::new(),
        }
    }

    /// Chooses the transport (direct calls or per-server worker threads).
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the network cost model.
    pub fn network(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Uses an existing statistics registry (so several layers share one).
    pub fn stats(mut self, registry: StatsRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Builds the cluster.
    pub fn build(self) -> Cluster<S> {
        let net = NetworkModel::new(self.net, self.registry.clone());
        let transport: Arc<dyn Transport<S>> = match self.kind {
            TransportKind::Direct => Arc::new(DirectTransport::new(
                self.servers.clone(),
                net.clone(),
                self.registry.clone(),
            )),
            TransportKind::Threaded { workers_per_server } => Arc::new(ThreadedTransport::new(
                self.servers.clone(),
                workers_per_server,
                net.clone(),
                self.registry.clone(),
            )),
        };
        Cluster {
            servers: self.servers,
            transport,
            net,
            registry: self.registry,
        }
    }
}

/// A running cluster of `S` servers plus the transport clients use to reach
/// them.
pub struct Cluster<S: Service> {
    servers: Vec<Arc<S>>,
    transport: Arc<dyn Transport<S>>,
    net: NetworkModel,
    registry: StatsRegistry,
}

impl<S: Service> Cluster<S> {
    /// Builds a cluster with default transport (direct) and no network cost.
    pub fn direct(servers: Vec<Arc<S>>) -> Self {
        ClusterBuilder::new(servers).build()
    }

    /// Number of storage servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// The transport handle clients use to issue RPCs.
    pub fn transport(&self) -> Arc<dyn Transport<S>> {
        Arc::clone(&self.transport)
    }

    /// Direct access to a server object, for white-box assertions in tests
    /// and for administrative operations (e.g. garbage-collection ticks)
    /// that the real system would perform inside the server process.
    pub fn server(&self, id: ServerId) -> Option<&Arc<S>> {
        self.servers.get(id)
    }

    /// All server objects.
    pub fn servers(&self) -> &[Arc<S>] {
        &self.servers
    }

    /// The network cost model shared by every RPC of this cluster.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// The statistics registry shared by the cluster's transports.
    pub fn stats(&self) -> &StatsRegistry {
        &self.registry
    }

    /// Convenience wrapper for issuing one RPC.
    pub fn call(&self, server: ServerId, req: S::Request) -> Result<S::Response> {
        self.transport.call(server, req)
    }
}

impl<S: Service> Clone for Cluster<S> {
    fn clone(&self) -> Self {
        Cluster {
            servers: self.servers.clone(),
            transport: Arc::clone(&self.transport),
            net: self.net.clone(),
            registry: self.registry.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Service for Doubler {
        type Request = u64;
        type Response = u64;
        fn call(&self, req: u64) -> u64 {
            req * 2
        }
    }

    #[test]
    fn builder_direct() {
        let servers = (0..4).map(|_| Arc::new(Doubler)).collect();
        let cluster = ClusterBuilder::new(servers).build();
        assert_eq!(cluster.num_servers(), 4);
        assert_eq!(cluster.call(3, 21).unwrap(), 42);
        assert!(cluster.call(4, 21).is_err());
        assert!(cluster.server(0).is_some());
        assert!(cluster.server(9).is_none());
    }

    #[test]
    fn builder_threaded_with_network() {
        let servers = (0..2).map(|_| Arc::new(Doubler)).collect();
        let cluster = ClusterBuilder::new(servers)
            .transport(TransportKind::Threaded {
                workers_per_server: 2,
            })
            .network(NetConfig {
                one_way_latency_us: 10,
                bytes_per_us: 0,
                sleep_latency: false,
                service_time_us: 0,
            })
            .build();
        assert_eq!(cluster.call(1, 5).unwrap(), 10);
        assert!(cluster.network().simulated_us() >= 20);
        assert_eq!(cluster.stats().counter("rpc.calls").get(), 1);
    }

    #[test]
    fn cluster_clone_shares_servers() {
        let servers = (0..1).map(|_| Arc::new(Doubler)).collect();
        let cluster = Cluster::direct(servers);
        let c2 = cluster.clone();
        assert_eq!(c2.call(0, 2).unwrap(), 4);
        assert_eq!(cluster.stats().counter("rpc.calls").get(), 1);
    }
}
