//! Deterministic fault injection for transports.
//!
//! [`FaultyTransport`] is a decorator: it wraps any [`Transport`] and, per
//! destination server, consults a seeded [`FaultPlan`] to decide whether a
//! request is dropped, delayed, duplicated, rejected with a transient error,
//! or refused because the server is "crashed".  The wrapped transport still
//! performs all of its own accounting (network model, per-server request
//! counts), so fault injection composes with both [`crate::DirectTransport`]
//! and [`crate::ThreadedTransport`] and with the [`crate::NetworkModel`].
//!
//! Fault semantics over a synchronous request/response transport:
//!
//! * **drop request** — the message never reaches the server; the caller
//!   observes [`Error::Timeout`] and the operation was *not* applied.
//! * **drop response** — the server processed the request but the reply is
//!   lost; the caller observes [`Error::Timeout`] even though the operation
//!   *was* applied.  This is the case that exercises server-side
//!   deduplication of retried non-idempotent operations.
//! * **duplicate** — the message is delivered twice back-to-back (a model of
//!   a retransmission racing the original); the caller sees the first
//!   response, the duplicate's response is discarded.
//! * **transient error** — the connection fails before the message is sent;
//!   the caller observes [`Error::Unavailable`] and may retry immediately.
//! * **delay** — the call sleeps for a bounded random time before delivery.
//! * **crash** — the server stops accepting requests ([`Error::Unavailable`]
//!   on every call) until [`FaultyTransport::restart`] is called or a
//!   scripted restart triggers.  By default the store behind the transport
//!   keeps its memory, so a plain crash models a partition /
//!   stall-and-recover.  With [`FaultPlan::amnesia`] set, every restart of a
//!   crashed server first runs that server's restart hook (see
//!   [`FaultyTransport::set_restart_hook`]), which the deployment wires to
//!   drop the server's volatile state and recover from its write-ahead log —
//!   a process kill rather than a stall.  ROADMAP.md § "Fault model"
//!   discusses the distinction.
//!
//! All randomness comes from per-server xoshiro generators seeded from the
//! plan, so a fixed seed reproduces the exact same fault schedule — the
//! property tests rely on this.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yesquel_common::stats::{Counter, StatsRegistry};
use yesquel_common::{Error, Result, ServerId};

use crate::transport::{Service, Transport};

/// Fault schedule for one server, mixing probabilistic faults (per-message
/// coin flips) with scripted ones (crash after the n-th delivered request).
///
/// All probabilities are in `[0, 1]` and are evaluated independently per
/// call in a fixed order: transient error, then drop-request, then delay,
/// then duplicate, then drop-response.  A plan with every probability at
/// zero and no scripted crash injects nothing and costs two atomic loads
/// per call.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for this server's fault generator.  The same `(seed, server)`
    /// pair always yields the same fault schedule.
    pub seed: u64,
    /// Probability that a request is dropped before reaching the server
    /// (caller sees [`Error::Timeout`]; the operation is not applied).
    pub drop_request: f64,
    /// Probability that the response is dropped after the server processed
    /// the request (caller sees [`Error::Timeout`]; the operation *is*
    /// applied).
    pub drop_response: f64,
    /// Probability that the request is delivered twice.
    pub duplicate: f64,
    /// Probability of a transient connection error before delivery (caller
    /// sees [`Error::Unavailable`]; the operation is not applied).
    pub transient_error: f64,
    /// Probability that a call is delayed before delivery.
    pub delay: f64,
    /// Delay bounds in microseconds, inclusive, drawn uniformly.
    pub delay_us: (u64, u64),
    /// If set, the server crashes immediately after delivering this many
    /// requests since its last (re)start; the response of the triggering
    /// request is lost.  Together with `restart_after_rejects` this scripts
    /// a repeating crash/recover cycle.
    pub crash_after_requests: Option<u64>,
    /// If set, a crashed server restarts automatically after rejecting this
    /// many requests (a cheap way to script crash/recovery cycles without a
    /// controlling thread).
    pub restart_after_rejects: Option<u64>,
    /// If true, a crash loses the server's volatile memory: every restart of
    /// a crashed server (manual, scripted, or via [`FaultyTransport::heal_all`])
    /// runs the server's restart hook before the server accepts requests
    /// again.  The hook — installed with [`FaultyTransport::set_restart_hook`]
    /// — is expected to wipe volatile state and replay durable state, so a
    /// crash models a process kill instead of a stall.
    pub amnesia: bool,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn healthy() -> Self {
        FaultPlan {
            seed: 0,
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate: 0.0,
            transient_error: 0.0,
            delay: 0.0,
            delay_us: (0, 0),
            crash_after_requests: None,
            restart_after_rejects: None,
            amnesia: false,
        }
    }

    /// A moderate all-of-the-above storm used by the chaos property test:
    /// every fault kind is enabled at a few percent, with short delays.
    pub fn storm(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_request: 0.03,
            drop_response: 0.03,
            duplicate: 0.05,
            transient_error: 0.03,
            delay: 0.05,
            delay_us: (10, 200),
            crash_after_requests: None,
            restart_after_rejects: None,
            amnesia: false,
        }
    }

    /// True if no fault can ever fire under this plan.
    pub fn is_healthy(&self) -> bool {
        self.drop_request == 0.0
            && self.drop_response == 0.0
            && self.duplicate == 0.0
            && self.transient_error == 0.0
            && self.delay == 0.0
            && self.crash_after_requests.is_none()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::healthy()
    }
}

/// Per-server mutable fault state.
struct FaultState {
    plan: Mutex<FaultPlan>,
    rng: Mutex<StdRng>,
    crashed: AtomicBool,
    /// Requests delivered to the server since its last (re)start, for
    /// `crash_after_requests`.
    delivered: AtomicU64,
    /// Requests rejected since the last crash, for `restart_after_rejects`.
    rejected_while_down: AtomicU64,
    /// Runs when a crashed server restarts under an amnesia plan, *before*
    /// the server accepts requests again.  The lock is held across the whole
    /// restart sequence so concurrent scripted restarts run the hook exactly
    /// once and callers never observe a half-recovered server.
    restart_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl FaultState {
    fn new(server: ServerId, plan: FaultPlan) -> Self {
        // Mix the server id into the seed so sibling servers sharing one
        // plan template still see independent schedules.
        let seed = yesquel_common::ids::splitmix64(
            plan.seed ^ (server as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        FaultState {
            plan: Mutex::new(plan),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            crashed: AtomicBool::new(false),
            delivered: AtomicU64::new(0),
            rejected_while_down: AtomicU64::new(0),
            restart_hook: Mutex::new(None),
        }
    }
}

/// Per-message fault decisions, drawn under one RNG lock so the schedule is
/// a pure function of (seed, call sequence) even with concurrent callers.
#[derive(Default)]
struct Decisions {
    transient: bool,
    drop_request: bool,
    delay_us: u64,
    duplicate: bool,
    drop_response: bool,
}

/// Counters published by the fault layer.
struct FaultCounters {
    injected: Arc<Counter>,
    drop_request: Arc<Counter>,
    drop_response: Arc<Counter>,
    duplicate: Arc<Counter>,
    transient: Arc<Counter>,
    delay: Arc<Counter>,
    crash: Arc<Counter>,
    crash_reject: Arc<Counter>,
}

impl FaultCounters {
    fn new(registry: &StatsRegistry) -> Self {
        FaultCounters {
            injected: registry.counter("rpc.faults_injected"),
            drop_request: registry.counter("rpc.fault.drop_request"),
            drop_response: registry.counter("rpc.fault.drop_response"),
            duplicate: registry.counter("rpc.fault.duplicate"),
            transient: registry.counter("rpc.fault.transient_error"),
            delay: registry.counter("rpc.fault.delay"),
            crash: registry.counter("rpc.fault.crash"),
            crash_reject: registry.counter("rpc.fault.crash_reject"),
        }
    }
}

/// A [`Transport`] decorator that injects faults per [`FaultPlan`].
///
/// Requires `S::Request: Clone` so a message can be duplicated on the wire.
pub struct FaultyTransport<S: Service> {
    inner: Arc<dyn Transport<S>>,
    states: Vec<FaultState>,
    counters: FaultCounters,
}

impl<S: Service> FaultyTransport<S>
where
    S::Request: Clone,
{
    /// Wraps `inner`, applying `plans[i]` to server `i`.  Servers beyond the
    /// end of `plans` get [`FaultPlan::healthy`].
    pub fn new(
        inner: Arc<dyn Transport<S>>,
        plans: Vec<FaultPlan>,
        registry: StatsRegistry,
    ) -> Self {
        let n = inner.num_servers();
        let mut plans = plans;
        plans.resize(n, FaultPlan::healthy());
        let states = plans
            .into_iter()
            .enumerate()
            .map(|(i, p)| FaultState::new(i, p))
            .collect();
        FaultyTransport {
            inner,
            states,
            counters: FaultCounters::new(&registry),
        }
    }

    /// Wraps `inner` with the same plan template on every server (each still
    /// gets an independent per-server schedule via seed mixing).
    pub fn uniform(inner: Arc<dyn Transport<S>>, plan: FaultPlan, registry: StatsRegistry) -> Self {
        let n = inner.num_servers();
        Self::new(inner, vec![plan; n], registry)
    }

    /// Crashes `server`: every subsequent call fails with
    /// [`Error::Unavailable`] until [`restart`](Self::restart) (or a
    /// scripted auto-restart) revives it.  The server's memory is kept.
    pub fn crash(&self, server: ServerId) {
        if let Some(st) = self.states.get(server) {
            if !st.crashed.swap(true, Ordering::SeqCst) {
                st.rejected_while_down.store(0, Ordering::SeqCst);
                self.counters.crash.inc();
                self.counters.injected.inc();
            }
        }
    }

    /// Restarts a crashed `server`; calls flow again and the scripted-crash
    /// delivery counter starts over.  Under an amnesia plan the server's
    /// restart hook runs first (while the server still rejects requests), so
    /// a restarted server comes back with only what it recovered from its
    /// durable state.  Restarting a server that never crashed is a no-op
    /// apart from resetting the scripted-crash counters — in particular it
    /// does not wipe the server.
    pub fn restart(&self, server: ServerId) {
        if let Some(st) = self.states.get(server) {
            let hook = st.restart_hook.lock();
            if st.crashed.load(Ordering::SeqCst) {
                if st.plan.lock().amnesia {
                    if let Some(h) = hook.as_ref() {
                        h();
                    }
                }
                st.crashed.store(false, Ordering::SeqCst);
            }
            st.rejected_while_down.store(0, Ordering::SeqCst);
            st.delivered.store(0, Ordering::SeqCst);
        }
    }

    /// Installs the hook run when `server` restarts from a crash under an
    /// amnesia plan.  The deployment layer wires this to the server's
    /// wipe-and-recover path; tests can override it to observe restarts.
    pub fn set_restart_hook(&self, server: ServerId, hook: impl Fn() + Send + Sync + 'static) {
        if let Some(st) = self.states.get(server) {
            *st.restart_hook.lock() = Some(Box::new(hook));
        }
    }

    /// True if `server` is currently crashed.
    pub fn is_crashed(&self, server: ServerId) -> bool {
        self.states
            .get(server)
            .map(|st| st.crashed.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// Replaces `server`'s plan and reseeds its fault generator from the new
    /// plan's seed (so healing a server mid-test is deterministic too).
    pub fn set_plan(&self, server: ServerId, plan: FaultPlan) {
        if let Some(st) = self.states.get(server) {
            let seed = yesquel_common::ids::splitmix64(
                plan.seed ^ (server as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            *st.rng.lock() = StdRng::seed_from_u64(seed);
            *st.plan.lock() = plan;
        }
    }

    /// Current plan of `server`.
    pub fn plan(&self, server: ServerId) -> Option<FaultPlan> {
        self.states.get(server).map(|st| st.plan.lock().clone())
    }

    /// Heals every server: healthy plans everywhere, all crashed servers
    /// restarted.  Chaos tests call this before checking convergence.
    /// Servers are restarted *before* their plan is replaced so a crashed
    /// server under an amnesia plan still loses its volatile memory — the
    /// crash already happened; healing must not un-kill the process.
    pub fn heal_all(&self) {
        for i in 0..self.states.len() {
            self.restart(i);
            self.set_plan(i, FaultPlan::healthy());
        }
    }

    /// Total faults injected so far (also available as the
    /// `rpc.faults_injected` registry counter).
    pub fn faults_injected(&self) -> u64 {
        self.counters.injected.get()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &Arc<dyn Transport<S>> {
        &self.inner
    }

    /// Draws this call's fault decisions from the server's seeded generator.
    fn draw(&self, st: &FaultState) -> Decisions {
        let plan = st.plan.lock();
        if plan.is_healthy() && plan.restart_after_rejects.is_none() {
            return Decisions::default();
        }
        let mut rng = st.rng.lock();
        Decisions {
            transient: plan.transient_error > 0.0 && rng.gen_bool(plan.transient_error),
            drop_request: plan.drop_request > 0.0 && rng.gen_bool(plan.drop_request),
            delay_us: if plan.delay > 0.0 && rng.gen_bool(plan.delay) {
                rng.gen_range(plan.delay_us.0..=plan.delay_us.1)
            } else {
                0
            },
            duplicate: plan.duplicate > 0.0 && rng.gen_bool(plan.duplicate),
            drop_response: plan.drop_response > 0.0 && rng.gen_bool(plan.drop_response),
        }
    }

    /// Records a delivery and fires a scripted crash if the plan says so.
    /// Returns true if the server crashed on this delivery (the response is
    /// considered lost).
    fn note_delivery(&self, st: &FaultState) -> bool {
        let delivered = st.delivered.fetch_add(1, Ordering::SeqCst) + 1;
        let crash_at = st.plan.lock().crash_after_requests;
        if let Some(n) = crash_at {
            if delivered >= n && !st.crashed.swap(true, Ordering::SeqCst) {
                st.rejected_while_down.store(0, Ordering::SeqCst);
                self.counters.crash.inc();
                self.counters.injected.inc();
                return true;
            }
        }
        false
    }
}

impl<S: Service> Transport<S> for FaultyTransport<S>
where
    S::Request: Clone,
{
    fn call(&self, server: ServerId, req: S::Request) -> Result<S::Response> {
        let Some(st) = self.states.get(server) else {
            // Unknown server: let the inner transport produce its usual error.
            return self.inner.call(server, req);
        };

        if st.crashed.load(Ordering::SeqCst) {
            let rejected = st.rejected_while_down.fetch_add(1, Ordering::SeqCst) + 1;
            let (restart_at, amnesia) = {
                let plan = st.plan.lock();
                (plan.restart_after_rejects, plan.amnesia)
            };
            match restart_at {
                Some(n) if rejected >= n => {
                    // Scripted recovery: this call goes through.  The hook
                    // lock serialises racing restarts; the re-check makes
                    // the losers find the server already up.
                    let hook = st.restart_hook.lock();
                    if st.crashed.load(Ordering::SeqCst) {
                        if amnesia {
                            if let Some(h) = hook.as_ref() {
                                h();
                            }
                        }
                        st.crashed.store(false, Ordering::SeqCst);
                        st.rejected_while_down.store(0, Ordering::SeqCst);
                        st.delivered.store(0, Ordering::SeqCst);
                    }
                }
                _ => {
                    self.counters.crash_reject.inc();
                    self.counters.injected.inc();
                    return Err(Error::Unavailable(format!("server {server} is down")));
                }
            }
        }

        let d = self.draw(st);

        if d.transient {
            self.counters.transient.inc();
            self.counters.injected.inc();
            return Err(Error::Unavailable(format!(
                "transient fault talking to server {server}"
            )));
        }
        if d.drop_request {
            self.counters.drop_request.inc();
            self.counters.injected.inc();
            return Err(Error::Timeout(format!(
                "request to server {server} dropped"
            )));
        }
        if d.delay_us > 0 {
            self.counters.delay.inc();
            self.counters.injected.inc();
            std::thread::sleep(std::time::Duration::from_micros(d.delay_us));
        }

        let dup_req = if d.duplicate { Some(req.clone()) } else { None };
        let resp = self.inner.call(server, req)?;
        let crashed_now = self.note_delivery(st);

        if let Some(dup) = dup_req {
            if !st.crashed.load(Ordering::SeqCst) {
                self.counters.duplicate.inc();
                self.counters.injected.inc();
                // The duplicate's response is discarded, as a retransmission
                // racing the original would be.
                let _ = self.inner.call(server, dup);
                self.note_delivery(st);
            }
        }

        if crashed_now {
            return Err(Error::Timeout(format!(
                "server {server} crashed before responding"
            )));
        }
        if d.drop_response {
            self.counters.drop_response.inc();
            self.counters.injected.inc();
            return Err(Error::Timeout(format!(
                "response from server {server} dropped"
            )));
        }
        Ok(resp)
    }

    fn num_servers(&self) -> usize {
        self.inner.num_servers()
    }

    fn fanout_profitable(&self) -> bool {
        // Injected delays, retry backoffs, and crash-reject stalls all eat
        // wall-clock time that independent calls can overlap — and chaos
        // tests deliberately want the parallel coordinator paths exercised.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::NetworkModel;
    use crate::transport::DirectTransport;
    use yesquel_common::NetConfig;

    /// A toy service that counts how many requests it actually handled.
    struct Counting {
        handled: AtomicU64,
    }

    impl Service for Counting {
        type Request = u64;
        type Response = u64;
        fn call(&self, req: u64) -> u64 {
            self.handled.fetch_add(1, Ordering::SeqCst);
            req + 1
        }
    }

    fn make(
        n: usize,
        plans: Vec<FaultPlan>,
    ) -> (
        Arc<Vec<Arc<Counting>>>,
        FaultyTransport<Counting>,
        StatsRegistry,
    ) {
        let servers: Vec<Arc<Counting>> = (0..n)
            .map(|_| {
                Arc::new(Counting {
                    handled: AtomicU64::new(0),
                })
            })
            .collect();
        let reg = StatsRegistry::new();
        let inner: Arc<dyn Transport<Counting>> = Arc::new(DirectTransport::new(
            servers.clone(),
            NetworkModel::new(NetConfig::default(), reg.clone()),
            reg.clone(),
        ));
        let faulty = FaultyTransport::new(inner, plans, reg.clone());
        (Arc::new(servers), faulty, reg)
    }

    #[test]
    fn healthy_plan_is_transparent() {
        let (servers, t, reg) = make(2, vec![]);
        for i in 0..50u64 {
            assert_eq!(t.call((i % 2) as usize, i).unwrap(), i + 1);
        }
        assert_eq!(t.faults_injected(), 0);
        assert_eq!(reg.counter("rpc.calls").get(), 50);
        assert_eq!(
            servers[0].handled.load(Ordering::SeqCst) + servers[1].handled.load(Ordering::SeqCst),
            50
        );
    }

    #[test]
    fn dropped_request_is_a_timeout_and_never_delivered() {
        let plan = FaultPlan {
            drop_request: 1.0,
            ..FaultPlan::healthy()
        };
        let (servers, t, _) = make(1, vec![plan]);
        for _ in 0..10 {
            match t.call(0, 1) {
                Err(Error::Timeout(_)) => {}
                other => panic!("expected Timeout, got {other:?}"),
            }
        }
        assert_eq!(servers[0].handled.load(Ordering::SeqCst), 0);
        assert_eq!(t.faults_injected(), 10);
    }

    #[test]
    fn dropped_response_is_a_timeout_but_was_applied() {
        let plan = FaultPlan {
            drop_response: 1.0,
            ..FaultPlan::healthy()
        };
        let (servers, t, reg) = make(1, vec![plan]);
        for _ in 0..10 {
            match t.call(0, 1) {
                Err(Error::Timeout(_)) => {}
                other => panic!("expected Timeout, got {other:?}"),
            }
        }
        // The server did process every request: only the acks were lost.
        assert_eq!(servers[0].handled.load(Ordering::SeqCst), 10);
        assert_eq!(reg.counter("rpc.fault.drop_response").get(), 10);
    }

    #[test]
    fn transient_error_is_unavailable_and_never_delivered() {
        let plan = FaultPlan {
            transient_error: 1.0,
            ..FaultPlan::healthy()
        };
        let (servers, t, _) = make(1, vec![plan]);
        match t.call(0, 1) {
            Err(Error::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
        assert_eq!(servers[0].handled.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn duplicates_deliver_twice_and_return_first_response() {
        let plan = FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::healthy()
        };
        let (servers, t, reg) = make(1, vec![plan]);
        for _ in 0..5 {
            assert_eq!(t.call(0, 41).unwrap(), 42);
        }
        assert_eq!(servers[0].handled.load(Ordering::SeqCst), 10);
        assert_eq!(reg.counter("rpc.fault.duplicate").get(), 5);
    }

    #[test]
    fn crash_rejects_until_restart() {
        let (servers, t, _) = make(2, vec![]);
        assert_eq!(t.call(0, 1).unwrap(), 2);
        t.crash(0);
        assert!(t.is_crashed(0));
        for _ in 0..3 {
            match t.call(0, 1) {
                Err(Error::Unavailable(_)) => {}
                other => panic!("expected Unavailable, got {other:?}"),
            }
        }
        // The other server is unaffected.
        assert_eq!(t.call(1, 5).unwrap(), 6);
        t.restart(0);
        assert!(!t.is_crashed(0));
        // Memory survived the crash (the service object is untouched).
        assert_eq!(t.call(0, 1).unwrap(), 2);
        assert_eq!(servers[0].handled.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn scripted_crash_and_auto_restart() {
        let plan = FaultPlan {
            crash_after_requests: Some(3),
            restart_after_rejects: Some(2),
            ..FaultPlan::healthy()
        };
        let (servers, t, _) = make(1, vec![plan]);
        assert_eq!(t.call(0, 1).unwrap(), 2);
        assert_eq!(t.call(0, 1).unwrap(), 2);
        // Third delivery triggers the crash; its response is lost even
        // though the server processed it.
        match t.call(0, 1) {
            Err(Error::Timeout(_)) => {}
            other => panic!("expected Timeout at crash point, got {other:?}"),
        }
        assert_eq!(servers[0].handled.load(Ordering::SeqCst), 3);
        // One rejection while down...
        assert!(matches!(t.call(0, 1), Err(Error::Unavailable(_))));
        // ...then the scripted restart lets the next call through.
        assert_eq!(t.call(0, 1).unwrap(), 2);
    }

    #[test]
    fn amnesia_restart_runs_hook_only_for_crashed_servers() {
        let plan = FaultPlan {
            amnesia: true,
            ..FaultPlan::healthy()
        };
        let (_, t, _) = make(2, vec![plan.clone(), plan]);
        let fired = Arc::new(AtomicU64::new(0));
        for i in 0..2 {
            let fired = Arc::clone(&fired);
            t.set_restart_hook(i, move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        t.crash(0);
        t.heal_all();
        assert_eq!(
            fired.load(Ordering::SeqCst),
            1,
            "only the crashed server loses its memory"
        );
        // Restarting a server that is already up must not wipe it.
        t.restart(0);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn plain_crash_restart_keeps_memory() {
        // Without `amnesia`, the hook stays dormant: a crash is a stall.
        let (_, t, _) = make(1, vec![]);
        let fired = Arc::new(AtomicU64::new(0));
        {
            let fired = Arc::clone(&fired);
            t.set_restart_hook(0, move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        t.crash(0);
        t.restart(0);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn scripted_amnesia_restart_fires_hook_before_serving() {
        let plan = FaultPlan {
            crash_after_requests: Some(2),
            restart_after_rejects: Some(1),
            amnesia: true,
            ..FaultPlan::healthy()
        };
        let (_, t, _) = make(1, vec![plan]);
        let fired = Arc::new(AtomicU64::new(0));
        {
            let fired = Arc::clone(&fired);
            t.set_restart_hook(0, move || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(t.call(0, 1).unwrap(), 2);
        // The second delivery crashes the server; its response is lost.
        assert!(matches!(t.call(0, 1), Err(Error::Timeout(_))));
        // The first rejected call triggers the scripted restart: the hook
        // runs before the call is allowed through.
        assert_eq!(t.call(0, 1).unwrap(), 2);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let plan = FaultPlan {
            drop_request: 0.3,
            drop_response: 0.2,
            duplicate: 0.2,
            transient_error: 0.1,
            ..FaultPlan::healthy()
        };
        let outcomes = |seed: u64| -> Vec<String> {
            let (_, t, _) = make(
                2,
                vec![
                    FaultPlan {
                        seed,
                        ..plan.clone()
                    },
                    FaultPlan {
                        seed,
                        ..plan.clone()
                    },
                ],
            );
            (0..100u64)
                .map(|i| match t.call((i % 2) as usize, i) {
                    Ok(_) => "ok".to_string(),
                    Err(e) => e.tag().to_string(),
                })
                .collect()
        };
        let a = outcomes(42);
        let b = outcomes(42);
        let c = outcomes(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // The storm actually injected a mix of outcomes.
        assert!(a.iter().any(|s| s == "ok"));
        assert!(a.iter().any(|s| s == "timeout"));
        assert!(a.iter().any(|s| s == "unavailable"));
    }

    #[test]
    fn sibling_servers_get_independent_schedules() {
        let plan = FaultPlan {
            seed: 7,
            drop_request: 0.5,
            ..FaultPlan::healthy()
        };
        let (_, t, _) = make(2, vec![plan.clone(), plan]);
        let seq = |server: usize| -> Vec<bool> {
            (0..64u64).map(|i| t.call(server, i).is_ok()).collect()
        };
        // Same seed, different server id: schedules must differ.
        assert_ne!(seq(0), seq(1));
    }

    #[test]
    fn heal_all_stops_injection() {
        let (_, t, _) = make(
            2,
            vec![
                FaultPlan {
                    drop_request: 1.0,
                    ..FaultPlan::healthy()
                },
                FaultPlan::healthy(),
            ],
        );
        t.crash(1);
        assert!(t.call(0, 1).is_err());
        assert!(t.call(1, 1).is_err());
        t.heal_all();
        assert_eq!(t.call(0, 1).unwrap(), 2);
        assert_eq!(t.call(1, 1).unwrap(), 2);
        assert!(t.plan(0).unwrap().is_healthy());
    }
}
