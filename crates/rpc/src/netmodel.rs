//! Network cost model.
//!
//! The simulated cluster runs inside one process, so the real network is
//! absent.  To keep the *shape* of the paper's latency results, every RPC is
//! charged a configurable cost: a fixed one-way latency per message plus a
//! bandwidth term proportional to message size.  The cost can either be
//! accumulated in a simulated-time counter (throughput experiments, latency
//! tables computed analytically from RPC counts) or actually slept
//! (closed-loop latency experiments).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use yesquel_common::stats::StatsRegistry;
use yesquel_common::NetConfig;

/// Shared network cost model; cheap to clone.
#[derive(Clone)]
pub struct NetworkModel {
    inner: Arc<Inner>,
}

struct Inner {
    cfg: NetConfig,
    simulated_us: AtomicU64,
    messages: AtomicU64,
    registry: StatsRegistry,
}

impl NetworkModel {
    /// Creates a model with the given configuration.
    pub fn new(cfg: NetConfig, registry: StatsRegistry) -> Self {
        NetworkModel {
            inner: Arc::new(Inner {
                cfg,
                simulated_us: AtomicU64::new(0),
                messages: AtomicU64::new(0),
                registry,
            }),
        }
    }

    /// A model that charges nothing (unit tests, pure-throughput runs).
    pub fn free(registry: StatsRegistry) -> Self {
        Self::new(NetConfig::default(), registry)
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &NetConfig {
        &self.inner.cfg
    }

    /// Cost in microseconds of sending one message of `bytes` bytes one way.
    pub fn one_way_cost_us(&self, bytes: usize) -> u64 {
        let cfg = &self.inner.cfg;
        let bw = (bytes as u64).checked_div(cfg.bytes_per_us).unwrap_or(0);
        cfg.one_way_latency_us + bw
    }

    /// Charges a full request/response round trip and returns the charged
    /// microseconds.  If the model is configured to sleep, the calling
    /// thread sleeps for that long, so closed-loop clients observe the
    /// modelled latency.
    pub fn charge_round_trip(&self, req_bytes: usize, resp_bytes: usize) -> u64 {
        let us = self.one_way_cost_us(req_bytes) + self.one_way_cost_us(resp_bytes);
        self.inner.messages.fetch_add(2, Ordering::Relaxed);
        if us == 0 {
            return 0;
        }
        self.inner.simulated_us.fetch_add(us, Ordering::Relaxed);
        self.inner.registry.counter("net.charged_us").add(us);
        if self.inner.cfg.sleep_latency {
            std::thread::sleep(Duration::from_micros(us));
        }
        us
    }

    /// Total simulated network time charged so far, in microseconds.
    pub fn simulated_us(&self) -> u64 {
        self.inner.simulated_us.load(Ordering::Relaxed)
    }

    /// Total number of messages charged so far (2 per round trip).
    pub fn messages(&self) -> u64 {
        self.inner.messages.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        let m = NetworkModel::free(StatsRegistry::new());
        assert_eq!(m.charge_round_trip(1000, 1000), 0);
        assert_eq!(m.simulated_us(), 0);
        assert_eq!(m.messages(), 2);
    }

    #[test]
    fn latency_and_bandwidth_terms() {
        let cfg = NetConfig {
            one_way_latency_us: 50,
            bytes_per_us: 100,
            sleep_latency: false,
            service_time_us: 0,
        };
        let m = NetworkModel::new(cfg, StatsRegistry::new());
        // 1000 bytes at 100 B/us = 10us + 50us latency each way.
        assert_eq!(m.one_way_cost_us(1000), 60);
        let rt = m.charge_round_trip(1000, 0);
        assert_eq!(rt, 60 + 50);
        assert_eq!(m.simulated_us(), 110);
    }

    #[test]
    fn datacenter_profile() {
        let m = NetworkModel::new(NetConfig::datacenter(), StatsRegistry::new());
        assert!(m.one_way_cost_us(0) >= 50);
        assert!(m.one_way_cost_us(1_250_000) > m.one_way_cost_us(0));
    }
}
