//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the criterion API surface used by `crates/bench`
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `black_box`, `BenchmarkId`) with a simple but honest
//! measurement loop: warm up, then time fixed-size batches and report the
//! mean / median / p95 nanoseconds per iteration.  No statistical regression
//! analysis is performed; this is a measuring stick, not a lab instrument.
//!
//! Machine-readable output: when the `BENCH_JSON_OUT` environment variable
//! names a file, every finished benchmark appends one JSON object per line
//! (`{"name": ..., "mean_ns": ..., "median_ns": ..., "p95_ns": ...,
//! "iters": ...}`) to it.  The workspace's `BENCH_*.json` baselines are
//! assembled from those lines (see `crates/bench`).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration of the warm-up phase per benchmark.
const WARMUP: Duration = Duration::from_millis(60);
/// Target duration of one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(4);
/// Number of timed batches (samples).
const SAMPLES: usize = 40;

/// True when `BENCH_SMOKE` is set (to anything but `0` or empty): smoke
/// mode runs every benchmark body exactly once with no warm-up, so CI can
/// verify that bench code still compiles and runs without paying for a real
/// measurement.  The reported numbers are meaningless in this mode.
fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function` for grouped benches).
    pub name: String,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: f64,
    /// Total iterations executed during measurement.
    pub iters: u64,
}

/// Collects per-iteration timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    iters: u64,
}

/// Hint for `iter_batched` (accepted for API compatibility; the shim sizes
/// batches by time, not by input size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::with_capacity(SAMPLES),
            iters: 0,
        }
    }

    /// Measures `f` called in a loop.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if smoke_mode() {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_nanos() as f64);
            self.iters += 1;
            return;
        }
        // Warm-up, and estimate the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((BATCH_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 22);

        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
            self.iters += batch;
        }
    }

    /// Measures `routine` on values produced by `setup`; only the routine is
    /// timed.  Used for benchmarks whose input must be rebuilt per call
    /// (e.g. cold-cache runs).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        if smoke_mode() {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
            self.iters += 1;
            return;
        }
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..SAMPLES {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
            self.iters += 1;
        }
    }

    fn result(mut self, name: &str) -> BenchResult {
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        let n = self.samples.len().max(1);
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let median = self.samples.get(n / 2).copied().unwrap_or(0.0);
        let p95 = self.samples.get((n * 95) / 100).copied().unwrap_or(median);
        BenchResult {
            name: name.to_string(),
            mean_ns: mean,
            median_ns: median,
            p95_ns: p95,
            iters: self.iters,
        }
    }
}

/// Benchmark identifier (`BenchmarkId::new("decode", 64)` -> `decode/64`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Throughput annotation (accepted, not used by the shim's reporting).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    finalized: bool,
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        let r = b.result(name);
        eprintln!(
            "bench {:<44} mean {:>12}  median {:>12}  p95 {:>12}",
            r.name,
            fmt_ns(r.mean_ns),
            fmt_ns(r.median_ns),
            fmt_ns(r.p95_ns)
        );
        self.results.push(r);
        self
    }

    /// Opens a named group; benches run through it are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            prefix: name.into(),
        }
    }

    /// Emits the JSON lines (if `BENCH_JSON_OUT` is set) and a closing
    /// summary.  Called automatically by `criterion_group!`.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        let Ok(path) = std::env::var("BENCH_JSON_OUT") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::new();
        for r in &self.results {
            let _ = writeln!(
                out,
                "{{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"iters\": {}}}",
                r.name.replace('"', "'"),
                r.mean_ns,
                r.median_ns,
                r.p95_ns,
                r.iters
            );
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut f) => {
                let _ = f.write_all(out.as_bytes());
            }
            Err(e) => eprintln!("criterion shim: cannot write {path}: {e}"),
        }
    }

    /// Finished results (for programmatic use).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.finalize();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.prefix, id);
        self.c.bench_function(&name, f);
        self
    }

    /// Accepted for API compatibility; the shim does not scale reports by
    /// throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.finalize();
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_sane_numbers() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let r = &c.results()[0];
        assert_eq!(r.name, "noop_add");
        assert!(r.mean_ns > 0.0);
        assert!(r.iters > 0);
        assert!(r.median_ns <= r.p95_ns * 1.001);
    }

    #[test]
    fn grouped_names_are_prefixed() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(3)));
            g.finish();
        }
        assert_eq!(c.results()[0].name, "grp/f/3");
    }
}
