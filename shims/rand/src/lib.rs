//! Offline stand-in for the `rand` crate.
//!
//! Implements the small subset of the rand 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`].  The generator is xoshiro256++ seeded through splitmix64
//! — statistically strong for workload generation, deterministic per seed,
//! and dependency-free.  It makes no cryptographic claims (neither do the
//! workloads that use it).

/// Types that can be produced uniformly from raw generator output.
pub trait StandardSample {
    /// Builds a uniformly distributed value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below what any workload here can detect.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                if s == e {
                    return s;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The subset of rand's `Rng` trait used in this workspace.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Seedable generators (the subset used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from the system clock and address-space
    /// entropy.  Deterministic tests should prefer [`seed_from_u64`].
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9);
        let addr = &t as *const _ as u64;
        Self::seed_from_u64(t ^ addr.rotate_left(17))
    }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh clock-seeded generator (API-compatible convenience).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respected_and_covered() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..2000 {
            let v = r.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.gen_range(5usize..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut low = 0u64;
        for _ in 0..n {
            if r.gen_range(0u64..100) < 50 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((0.48..0.52).contains(&frac), "biased: {frac}");
    }
}
