//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives with parking_lot's non-poisoning
//! API (`lock()` returns the guard directly).  Performance is that of the
//! std locks, which on Linux are futex-based and entirely adequate for this
//! workspace; what matters here is API compatibility without crates.io.

use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquire methods never return poison errors.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
