//! Offline stand-in for `crossbeam` — just the `channel` module.
//!
//! Provides multi-producer **multi-consumer** channels (std's mpsc receiver
//! is not clonable, and the threaded transport fans one queue out to several
//! worker threads).  Built on a `Mutex<VecDeque>` plus condvars; throughput
//! is far below real crossbeam's lock-free queues but entirely sufficient
//! for the request rates the simulated cluster pushes through it.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of a channel.  Clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.  Clonable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                let _g = self.chan.queue.lock().unwrap();
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _g = self.chan.queue.lock().unwrap();
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.  Fails
        /// only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.chan.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self.chan.not_full.wait(q).unwrap();
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking while the channel is empty.  Fails only
        /// when the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.not_empty.wait(q).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            if let Some(v) = q.pop_front() {
                drop(q);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.queue.lock().unwrap().len()
        }

        /// True if no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel with capacity `cap` (at least 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn mpmc_workers_drain_everything() {
            let (tx, rx) = bounded::<u64>(8);
            let mut workers = Vec::new();
            let total = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            for _ in 0..4 {
                let rx = rx.clone();
                let total = std::sync::Arc::clone(&total);
                workers.push(std::thread::spawn(move || {
                    while rx.recv().is_ok() {
                        total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }));
            }
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 1000);
        }

        #[test]
        fn bounded_blocks_until_capacity_frees() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the first recv
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }
    }
}
