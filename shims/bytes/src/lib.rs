//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of external crates the code depends on are vendored as minimal
//! API-compatible shims (see `shims/` in the workspace root).  This one
//! provides [`Bytes`]: a cheaply clonable, sliceable view into a
//! reference-counted byte buffer.  Cloning and slicing never copy the
//! underlying bytes — which is exactly the property the YDBT leaf-fetch hot
//! path relies on (`Node::decode_shared` returns values that are slices of
//! the fetched buffer).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable and sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice without copying.
    ///
    /// (The real crate stores the reference; the shim copies once into a
    /// shared buffer, which is equivalent for every use in this workspace.)
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::copy_from_slice(b)
    }

    /// Copies `b` into a fresh shared buffer.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes {
            data: Arc::from(b),
            start: 0,
            end: b.len(),
        }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of this buffer without copying.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice start {begin} > end {end}");
        assert!(end <= len, "slice end {end} out of bounds of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Returns a `Bytes` view of `subset`, which must lie inside `self`.
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_slice().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len(),
            "slice_ref: subset is not within the Bytes"
        );
        let off = sub - base;
        self.slice(off..off + subset.len())
    }

    /// Copies this view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(Arc::as_ptr(&b.data), Arc::as_ptr(&c.data));
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(Arc::as_ptr(&b.data), Arc::as_ptr(&s.data));
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn slice_ref_finds_offset() {
        let b = Bytes::from(vec![9u8, 8, 7, 6]);
        let sub = &b[1..3];
        let s = b.slice_ref(sub);
        assert_eq!(&s[..], &[8, 7]);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(0..3);
    }

    #[test]
    fn equality_and_order() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
        assert_eq!(Bytes::from_static(b"xy"), b"xy".to_vec());
        assert_eq!(b"xy".to_vec(), Bytes::from_static(b"xy"));
    }
}
