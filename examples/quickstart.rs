//! Quickstart: open an in-process Yesquel deployment and drive it the way a
//! web application does — prepare the hot statements once, re-execute them
//! with fresh parameters (zero parse, zero plan per call), and read results
//! through typed rows.  At the end, drop below SQL to the raw distributed
//! balanced trees the statements compile onto.
//!
//! Run with: `cargo run --release --example quickstart`

use yesquel::common::encoding::order_encode_i64;
use yesquel::{params, Result, Yesquel};

fn main() -> Result<()> {
    // Four storage servers, default configuration, direct transport.
    let y = Yesquel::open(4);
    y.execute_script(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, karma INT NOT NULL);
         CREATE INDEX users_by_karma ON users (karma)",
    )?;

    // Prepare once, execute many: the handle owns the plan, so each call
    // binds parameters and runs — no SQL text is touched again.
    let insert = y.prepare("INSERT INTO users (name, karma) VALUES (?, ?)")?;
    for id in 0..100i64 {
        insert.execute(params![format!("user-{id}"), id % 10])?;
    }
    println!("loaded 100 users through one prepared INSERT");

    // Named parameters bind by name; results come back as typed rows.
    let by_id = y.prepare("SELECT name, karma FROM users WHERE id = :id")?;
    let rs = by_id.execute_named(&[(":id", 42.into())])?;
    let row = rs.iter().next().expect("user 42 exists");
    println!(
        "user 42 = {} (karma {})",
        row.get::<&str>("name")?,
        row.get::<i64>("karma")?
    );

    // Re-execution really does skip the whole front end: the sql.parses and
    // sql.plans counters stand still across a hundred point reads.
    let stats = y.db().stats();
    let (parses, plans) = (
        stats.counter("sql.parses").get(),
        stats.counter("sql.plans").get(),
    );
    for id in 0..100i64 {
        by_id.execute(params![id + 1])?;
    }
    assert_eq!(stats.counter("sql.parses").get(), parses);
    assert_eq!(stats.counter("sql.plans").get(), plans);
    println!("100 re-executions: 0 parses, 0 plans");

    // query_map drives the streaming row iterator and maps each typed row;
    // the ORDER BY comes straight off the karma index (no sort, and LIMIT
    // stops the scan after five entries).
    let top =
        y.prepare("SELECT name, karma FROM users WHERE karma >= ?1 ORDER BY karma LIMIT 5")?;
    let leaders: Vec<(String, i64)> =
        top.query_map(params![8], |r| Ok((r.get("name")?, r.get("karma")?)))?;
    println!("first five with karma >= 8: {leaders:?}");

    // Below SQL: every table and index above is a distributed balanced
    // tree; raw trees and transactions remain available.
    let scratch = y.create_tree(1)?;
    let txn = y.begin();
    scratch.insert(&txn, &order_encode_i64(7), b"raw bytes")?;
    let v = scratch
        .lookup(&txn, &order_encode_i64(7))?
        .expect("written");
    txn.commit()?;
    println!("raw tree read back {:?}", std::str::from_utf8(&v).unwrap());

    // Warm point reads fetch one node; read-only commits cost no RPCs.
    let txn = y.begin();
    let fetches = stats.counter("dbt.node_fetches").get();
    for id in 0..100i64 {
        let _ = by_id.query(params![id + 1])?.next();
    }
    let per_lookup = (stats.counter("dbt.node_fetches").get() - fetches) as f64 / 100.0;
    println!("warm SQL point reads fetched {per_lookup:.2} nodes per lookup");
    let rpcs = stats.counter("rpc.calls").get();
    txn.commit()?;
    assert_eq!(stats.counter("rpc.calls").get(), rpcs);
    println!("read-only commit issued 0 RPCs");
    Ok(())
}
