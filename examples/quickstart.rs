//! Quickstart: open an in-process Yesquel deployment, create a tree, write
//! inside a transaction, read it back, and show that a warm point read costs
//! one node fetch and a read-only commit costs no RPCs.
//!
//! Run with: `cargo run --release --example quickstart`

use yesquel::common::encoding::order_encode_i64;
use yesquel::{Result, Yesquel};

fn main() -> Result<()> {
    // Four storage servers, default configuration, direct transport.
    let y = Yesquel::open(4);
    let users = y.create_tree(1)?;

    // A read-write transaction: buffered writes, committed atomically.
    let txn = y.begin();
    for id in 0..100i64 {
        users.insert(&txn, &order_encode_i64(id), format!("user-{id}").as_bytes())?;
    }
    let commit_ts = txn.commit()?;
    println!("loaded 100 users at commit timestamp {commit_ts}");

    // Point reads: the first walks the tree, later ones hit the client's
    // inner-node cache and fetch only the leaf.
    let txn = y.begin();
    let v = users
        .lookup(&txn, &order_encode_i64(42))?
        .expect("user 42 exists");
    println!("user 42 = {:?}", std::str::from_utf8(&v).unwrap());

    let stats = y.db().stats();
    let fetches_before = stats.counter("dbt.node_fetches").get();
    for id in 0..100i64 {
        users.lookup(&txn, &order_encode_i64(id))?;
    }
    let per_lookup = (stats.counter("dbt.node_fetches").get() - fetches_before) as f64 / 100.0;
    println!("warm point reads fetched {per_lookup:.2} nodes per lookup");

    // Read-only transactions commit with no communication at all.
    let rpcs_before = stats.counter("rpc.calls").get();
    txn.commit()?;
    assert_eq!(stats.counter("rpc.calls").get(), rpcs_before);
    println!("read-only commit issued 0 RPCs");

    // A range scan through a fresh snapshot.
    let txn = y.begin();
    let first_five: Vec<String> = users
        .scan(&txn, None, None)?
        .take(5)
        .map(|r| String::from_utf8(r.unwrap().1.to_vec()).unwrap())
        .collect();
    println!("first five by key order: {first_five:?}");
    txn.commit()?;
    Ok(())
}
