//! An event-analytics workload on SQL: append-mostly inserts through one
//! prepared statement, then bounded index range scans with ORDER BY/LIMIT
//! — the scale-predictable plan shapes (PIQL-style) the planner is
//! restricted to — read back through typed rows.
//!
//! Run with: `cargo run --release --example analytics`

use yesquel::{params, Result, Value, Yesquel};

fn main() -> Result<()> {
    let y = Yesquel::open(4);
    y.execute_script(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, user TEXT NOT NULL,
                              kind TEXT NOT NULL, at INT NOT NULL, amount INT);
         CREATE INDEX events_by_user_time ON events (user, at);
         CREATE INDEX events_by_kind ON events (kind);",
    )?;

    // Ingest a stream of events from a handful of users: the INSERT is
    // parsed and planned exactly once, then re-executed 600 times.
    let ingest =
        y.prepare("INSERT INTO events (user, kind, at, amount) VALUES (?1, ?2, ?3, ?4)")?;
    let kinds = ["view", "click", "buy"];
    for t in 0..600i64 {
        ingest.execute(params![
            format!("user-{}", t % 7),
            kinds[(t % 3) as usize],
            t,
            (t * 13) % 97
        ])?;
    }
    println!("ingested 600 events");

    // Per-user timeline slice: composite-index scan with an equality prefix
    // (user) and a range on the next column (at) — stops at the bound, no
    // client-side over-read.  Named parameters keep the three bindings
    // readable at the call site.
    let timeline = y.prepare(
        "SELECT at, kind, amount FROM events \
         WHERE user = :user AND at BETWEEN :lo AND :hi ORDER BY at",
    )?;
    let slice = timeline.execute_named(&[
        (":user", "user-3".into()),
        (":lo", Value::Int(100)),
        (":hi", Value::Int(200)),
    ])?;
    println!("user-3 activity in [100, 200]: {} events", slice.rows.len());

    // Recent purchases across all users (index on kind, residual ORDER BY),
    // mapped into typed tuples by column name.
    let purchases = y.prepare(
        "SELECT user, at, amount FROM events WHERE kind = ? \
         ORDER BY at DESC LIMIT 10",
    )?;
    println!("latest purchases:");
    for (user, at, amount) in purchases.query_map(params!["buy"], |r| {
        Ok((
            r.get::<String>("user")?,
            r.get::<i64>("at")?,
            r.get::<i64>("amount")?,
        ))
    })? {
        println!("  {user} at t={at} ({amount} units)");
    }

    // Big spenders: index scan plus residual filter on a non-indexed column.
    let spenders = y.execute(
        "SELECT DISTINCT user FROM events WHERE kind = ? AND amount >= ?",
        params!["buy", 80],
    )?;
    println!("{} users made a purchase of 80+ units", spenders.rows.len());

    // Cold data retention: trim old events transactionally.
    let expired = y.execute("DELETE FROM events WHERE at < ?", params![100])?;
    println!("expired {} old events", expired.rows_affected);
    Ok(())
}
