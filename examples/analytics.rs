//! An event-analytics workload on SQL: append-mostly inserts, then bounded
//! index range scans with ORDER BY/LIMIT — the scale-predictable plan
//! shapes (PIQL-style) the planner is restricted to.
//!
//! Run with: `cargo run --release --example analytics`

use yesquel::{Result, Value, Yesquel};

fn main() -> Result<()> {
    let y = Yesquel::open(4);
    y.execute_script(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, user TEXT NOT NULL,
                              kind TEXT NOT NULL, at INT NOT NULL, amount INT);
         CREATE INDEX events_by_user_time ON events (user, at);
         CREATE INDEX events_by_kind ON events (kind);",
    )?;

    // Ingest a stream of events from a handful of users.
    let kinds = ["view", "click", "buy"];
    for t in 0..600i64 {
        y.execute(
            "INSERT INTO events (user, kind, at, amount) VALUES (?, ?, ?, ?)",
            &[
                Value::Text(format!("user-{}", t % 7)),
                Value::Text(kinds[(t % 3) as usize].into()),
                Value::Int(t),
                Value::Int((t * 13) % 97),
            ],
        )?;
    }
    println!("ingested 600 events");

    // Per-user timeline slice: composite-index scan with an equality prefix
    // (user) and a range on the next column (at) — stops at the bound, no
    // client-side over-read.
    let rs = y.execute(
        "SELECT at, kind, amount FROM events \
         WHERE user = ? AND at BETWEEN ? AND ? ORDER BY at",
        &[
            Value::Text("user-3".into()),
            Value::Int(100),
            Value::Int(200),
        ],
    )?;
    println!("user-3 activity in [100, 200]: {} events", rs.rows.len());

    // Recent purchases across all users (index on kind, residual ORDER BY).
    let rs = y.execute(
        "SELECT user, at, amount FROM events WHERE kind = 'buy' \
         ORDER BY at DESC LIMIT 10",
        &[],
    )?;
    println!("latest purchases:");
    for row in &rs.rows {
        println!("  {} at t={} ({} units)", row[0], row[1], row[2]);
    }

    // Big spenders: index scan plus residual filter on a non-indexed column.
    let rs = y.execute(
        "SELECT DISTINCT user FROM events WHERE kind = 'buy' AND amount >= 80",
        &[],
    )?;
    println!("{} users made a purchase of 80+ units", rs.rows.len());

    // Cold data retention: trim old events transactionally.
    let rs = y.execute("DELETE FROM events WHERE at < ?", &[Value::Int(100)])?;
    println!("expired {} old events", rs.rows_affected);
    Ok(())
}
