//! A shopping-cart service on SQL with explicit transactions: checkout
//! moves stock and cart rows atomically, and a conflicting checkout aborts
//! at COMMIT (first-committer-wins under snapshot isolation) and retries.
//! All statements are prepared once per session and re-executed across
//! retries — the plan pin survives the retry loop, revalidated against the
//! catalog generation.
//!
//! Run with: `cargo run --release --example shopping_cart`

use yesquel::{params, Error, Result, Value, Yesquel};

fn main() -> Result<()> {
    let y = Yesquel::open(3);
    y.execute_script(
        "CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT NOT NULL, stock INT NOT NULL);
         CREATE TABLE cart_items (id INTEGER PRIMARY KEY, cart TEXT NOT NULL,
                                  product INT NOT NULL, qty INT NOT NULL);
         CREATE INDEX cart_items_by_cart ON cart_items (cart);",
    )?;
    y.execute(
        "INSERT INTO products (name, stock) VALUES ('keyboard', 5), ('mouse', 9), ('monitor', 2)",
        &[],
    )?;

    // Two customers fill their carts (one prepared INSERT, autocommitted).
    let add = y.prepare("INSERT INTO cart_items (cart, product, qty) VALUES (?, ?, ?)")?;
    for (cart, product, qty) in [("alice", 1i64, 1i64), ("alice", 3, 2), ("bob", 3, 1)] {
        add.execute(params![cart, product, qty])?;
    }

    // Checkout = one explicit transaction: read the cart through the index,
    // decrement stock per line, clear the cart.  Retried as a whole on
    // commit conflicts, re-driving the same prepared handles.
    let session = y.new_session()?;
    let cart_lines = session.prepare("SELECT product, qty FROM cart_items WHERE cart = ?")?;
    let stock_of = session.prepare("SELECT stock FROM products WHERE id = ?")?;
    let take_stock = session.prepare("UPDATE products SET stock = stock - :qty WHERE id = :id")?;
    let clear_cart = session.prepare("DELETE FROM cart_items WHERE cart = ?")?;

    let checkout = |who: &str| -> Result<()> {
        loop {
            session.execute("BEGIN", &[])?;
            let run = (|| -> Result<()> {
                let lines: Vec<(i64, i64)> = cart_lines
                    .query_map(params![who], |r| Ok((r.get("product")?, r.get("qty")?)))?;
                for (product, qty) in lines {
                    let rs = stock_of.execute(params![product])?;
                    let stock = rs
                        .iter()
                        .next()
                        .map_or(0, |r| r.get::<i64>("stock").unwrap_or(0));
                    if stock < qty {
                        return Err(Error::Constraint(format!("{who}: out of stock")));
                    }
                    take_stock.execute_named(&[
                        (":qty", Value::Int(qty)),
                        (":id", Value::Int(product)),
                    ])?;
                }
                clear_cart.execute(params![who])?;
                Ok(())
            })();
            match run.and_then(|()| session.execute("COMMIT", &[]).map(|_| ())) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() => {
                    println!("{who}: checkout conflicted, retrying");
                    continue;
                }
                Err(e) => {
                    if session.in_transaction() {
                        session.execute("ROLLBACK", &[])?;
                    }
                    return Err(e);
                }
            }
        }
    };

    // Alice and Bob both want the last monitors; both checkouts run, the
    // conflict resolves by retry, and stock never goes negative.
    checkout("alice")?;
    match checkout("bob") {
        Ok(()) => println!("bob checked out"),
        Err(Error::Constraint(msg)) => println!("{msg}"),
        Err(e) => return Err(e),
    }

    let rs = y.execute("SELECT name, stock FROM products ORDER BY id", &[])?;
    println!("remaining stock:");
    for row in rs.iter() {
        println!(
            "  {}: {}",
            row.get::<&str>("name")?,
            row.get::<i64>("stock")?
        );
    }
    let rs = y.execute("SELECT id FROM cart_items", &[])?;
    println!("cart rows left: {}", rs.rows.len());
    Ok(())
}
