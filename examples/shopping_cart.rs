//! A shopping-cart service on SQL with explicit transactions: checkout
//! moves stock and cart rows atomically, and a conflicting checkout aborts
//! at COMMIT (first-committer-wins under snapshot isolation) and retries.
//!
//! Run with: `cargo run --release --example shopping_cart`

use yesquel::{Error, Result, Value, Yesquel};

fn main() -> Result<()> {
    let y = Yesquel::open(3);
    y.execute_script(
        "CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT NOT NULL, stock INT NOT NULL);
         CREATE TABLE cart_items (id INTEGER PRIMARY KEY, cart TEXT NOT NULL,
                                  product INT NOT NULL, qty INT NOT NULL);
         CREATE INDEX cart_items_by_cart ON cart_items (cart);",
    )?;
    y.execute(
        "INSERT INTO products (name, stock) VALUES ('keyboard', 5), ('mouse', 9), ('monitor', 2)",
        &[],
    )?;

    // Two customers fill their carts (autocommitted statements).
    for (cart, product, qty) in [("alice", 1, 1), ("alice", 3, 2), ("bob", 3, 1)] {
        y.execute(
            "INSERT INTO cart_items (cart, product, qty) VALUES (?, ?, ?)",
            &[cart.into(), Value::Int(product), Value::Int(qty)],
        )?;
    }

    // Checkout = one explicit transaction: read the cart through the index,
    // decrement stock per line, clear the cart.  Retried as a whole on
    // commit conflicts.
    let checkout = |who: &str| -> Result<()> {
        let session = y.new_session()?;
        loop {
            session.execute("BEGIN", &[])?;
            let run = (|| -> Result<()> {
                let items = session.execute(
                    "SELECT product, qty FROM cart_items WHERE cart = ?",
                    &[who.into()],
                )?;
                for line in &items.rows {
                    let left = session.execute(
                        "SELECT stock FROM products WHERE id = ?",
                        &[line[0].clone()],
                    )?;
                    let (Value::Int(stock), Value::Int(qty)) = (&left.rows[0][0], &line[1]) else {
                        return Err(Error::Internal("bad row".into()));
                    };
                    if stock < qty {
                        return Err(Error::Constraint(format!("{who}: out of stock")));
                    }
                    session.execute(
                        "UPDATE products SET stock = stock - ? WHERE id = ?",
                        &[line[1].clone(), line[0].clone()],
                    )?;
                }
                session.execute("DELETE FROM cart_items WHERE cart = ?", &[who.into()])?;
                Ok(())
            })();
            match run.and_then(|()| session.execute("COMMIT", &[]).map(|_| ())) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() => {
                    println!("{who}: checkout conflicted, retrying");
                    continue;
                }
                Err(e) => {
                    if session.in_transaction() {
                        session.execute("ROLLBACK", &[])?;
                    }
                    return Err(e);
                }
            }
        }
    };

    // Alice and Bob both want the last monitors; both checkouts run, the
    // conflict resolves by retry, and stock never goes negative.
    checkout("alice")?;
    match checkout("bob") {
        Ok(()) => println!("bob checked out"),
        Err(Error::Constraint(msg)) => println!("{msg}"),
        Err(e) => return Err(e),
    }

    let rs = y.execute("SELECT name, stock FROM products ORDER BY id", &[])?;
    println!("remaining stock:");
    for row in &rs.rows {
        println!("  {}: {}", row[0], row[1]);
    }
    let rs = y.execute("SELECT id FROM cart_items", &[])?;
    println!("cart rows left: {}", rs.rows.len());
    Ok(())
}
