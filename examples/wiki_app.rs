//! A Wikipedia-style application on real SQL — the workload family the
//! paper evaluates Yesquel against.  The hot statements are prepared once
//! and re-executed with fresh parameters; every one is compiled by the
//! planner onto DBT operations running inside distributed transactions.
//!
//! Run with: `cargo run --release --example wiki_app`

use yesquel::{params, Result, Value, Yesquel};

fn main() -> Result<()> {
    let y = Yesquel::open(4);

    // Schema: pages looked up by title (unique index) and listed by recent
    // activity (non-unique index on the touch counter).
    y.execute_script(
        "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL,
                             body TEXT, views INT NOT NULL);
         CREATE UNIQUE INDEX pages_by_title ON pages (title);
         CREATE INDEX pages_by_views ON pages (views);",
    )?;

    // Load some articles through one prepared INSERT with named parameters.
    let insert =
        y.prepare("INSERT INTO pages (title, body, views) VALUES (:title, :body, :views)")?;
    for i in 0..200i64 {
        insert.execute_named(&[
            (":title", Value::Text(format!("Article_{i:03}"))),
            (
                ":body",
                Value::Text(format!("The contents of article {i}.")),
            ),
            (":views", Value::Int(i % 17)),
        ])?;
    }
    println!("loaded 200 pages");

    // The hot path of a wiki: fetch a page by title.  The planner compiles
    // this to a unique-index probe plus one rowid fetch-back; the handle
    // re-executes it with zero parse and zero plan work.
    let by_title = y.prepare("SELECT id, body, views FROM pages WHERE title = ?")?;
    let rs = by_title.execute(params!["Article_042"])?;
    let page = rs.iter().next().expect("article exists");
    println!(
        "Article_042 -> id {} ({} views): {}",
        page.get::<i64>("id")?,
        page.get::<i64>("views")?,
        page.get::<&str>("body")?
    );

    // A page view: bump the counter (index on views is maintained).
    let touch = y.prepare("UPDATE pages SET views = views + 1 WHERE title = ?")?;
    touch.execute(params!["Article_042"])?;

    // Most-viewed listing: bounded index range scan with ORDER BY + LIMIT,
    // mapped straight into typed tuples.
    let top = y.prepare(
        "SELECT title, views FROM pages WHERE views >= ?1 ORDER BY views DESC, title LIMIT 5",
    )?;
    println!("top pages:");
    for (title, views) in top.query_map(params![10], |r| {
        Ok((r.get::<String>("title")?, r.get::<i64>("views")?))
    })? {
        println!("  {title} ({views} views)");
    }

    // An edit session: read-modify-write of one article inside an explicit
    // transaction (snapshot isolated; a racing editor would abort and
    // retry at COMMIT).  Prepared handles work inside BEGIN/COMMIT too.
    let editor = y.new_session()?;
    let read = editor.prepare("SELECT id, body FROM pages WHERE title = ?")?;
    let write = editor.prepare("UPDATE pages SET body = :body WHERE id = :id")?;
    editor.execute("BEGIN", &[])?;
    let rs = read.execute(params!["Article_007"])?;
    let row = rs.iter().next().expect("article exists");
    let new_body = format!("{} (edited)", row.get::<&str>("body")?);
    write.execute_named(&[
        (":body", Value::Text(new_body)),
        (":id", row.get::<Value>("id")?),
    ])?;
    editor.execute("COMMIT", &[])?;
    let rs = by_title.execute(params!["Article_007"])?;
    println!(
        "after edit: {}",
        rs.iter().next().unwrap().get::<&str>("body")?
    );

    // Deleting a page removes it from every index transactionally.
    y.execute("DELETE FROM pages WHERE title = ?", params!["Article_013"])?;
    let gone = by_title.execute(params!["Article_013"])?;
    assert!(gone.rows.is_empty());
    println!("Article_013 deleted; indexes consistent");
    Ok(())
}
