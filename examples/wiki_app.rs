//! A Wikipedia-style application on real SQL — the workload family the
//! paper evaluates Yesquel against.  Every statement below is compiled by
//! the planner onto DBT operations running inside distributed transactions;
//! no hand-rolled tree calls remain.
//!
//! Run with: `cargo run --release --example wiki_app`

use yesquel::{Result, Value, Yesquel};

fn main() -> Result<()> {
    let y = Yesquel::open(4);

    // Schema: pages looked up by title (unique index) and listed by recent
    // activity (non-unique index on the touch counter).
    y.execute_script(
        "CREATE TABLE pages (id INTEGER PRIMARY KEY, title TEXT NOT NULL,
                             body TEXT, views INT NOT NULL);
         CREATE UNIQUE INDEX pages_by_title ON pages (title);
         CREATE INDEX pages_by_views ON pages (views);",
    )?;

    // Load some articles.
    for i in 0..200i64 {
        y.execute(
            "INSERT INTO pages (title, body, views) VALUES (?, ?, ?)",
            &[
                Value::Text(format!("Article_{i:03}")),
                Value::Text(format!("The contents of article {i}.")),
                Value::Int(i % 17),
            ],
        )?;
    }
    println!("loaded 200 pages");

    // The hot path of a wiki: fetch a page by title.  The planner compiles
    // this to a unique-index probe plus one rowid fetch-back.
    let rs = y.execute(
        "SELECT id, body, views FROM pages WHERE title = ?",
        &[Value::Text("Article_042".into())],
    )?;
    println!("Article_042 -> {:?}", rs.rows[0]);

    // A page view: bump the counter (index on views is maintained).
    y.execute(
        "UPDATE pages SET views = views + 1 WHERE title = ?",
        &[Value::Text("Article_042".into())],
    )?;

    // Most-viewed listing: bounded index range scan with ORDER BY + LIMIT.
    let rs = y.execute(
        "SELECT title, views FROM pages WHERE views >= 10 ORDER BY views DESC, title LIMIT 5",
        &[],
    )?;
    println!("top pages:");
    for row in &rs.rows {
        println!("  {} ({} views)", row[0], row[1]);
    }

    // An edit session: read-modify-write of one article inside an explicit
    // transaction (snapshot isolated; a racing editor would abort and
    // retry at COMMIT).
    let editor = y.new_session()?;
    editor.execute("BEGIN", &[])?;
    let page = editor.execute(
        "SELECT id, body FROM pages WHERE title = ?",
        &[Value::Text("Article_007".into())],
    )?;
    let new_body = format!("{} (edited)", page.rows[0][1]);
    editor.execute(
        "UPDATE pages SET body = ? WHERE id = ?",
        &[Value::Text(new_body), page.rows[0][0].clone()],
    )?;
    editor.execute("COMMIT", &[])?;
    let rs = y.execute("SELECT body FROM pages WHERE title = 'Article_007'", &[])?;
    println!("after edit: {}", rs.rows[0][0]);

    // Deleting a page removes it from every index transactionally.
    y.execute("DELETE FROM pages WHERE title = 'Article_013'", &[])?;
    let gone = y.execute("SELECT id FROM pages WHERE title = 'Article_013'", &[])?;
    assert!(gone.rows.is_empty());
    println!("Article_013 deleted; indexes consistent");
    Ok(())
}
