//! Observability smoke dump: open a deployment with timing histograms and
//! trace sampling on, run a small mixed workload, then print the two
//! artifacts an operator would actually look at — the full metrics
//! snapshot (counters + latency histograms) and the slow-op ring — as
//! JSON.  CI runs this to prove the whole `obs` pipeline (histogram
//! records on every layer's hot path, sampled traces, span accounting,
//! ring capture, JSON export) works end to end.
//!
//! Run with: `cargo run --release --example obs_dump`

use yesquel::common::config::{ObsConfig, YesquelConfig};
use yesquel::{params, Result, Yesquel};

fn main() -> Result<()> {
    let mut config = YesquelConfig::with_servers(4);
    config.obs = ObsConfig {
        timing: true,
        trace_sample_every: 4, // sample aggressively: this is a demo
        slow_threshold_us: 0,  // keep every sampled trace in the ring
    };
    let y = Yesquel::open_with(config);

    y.execute_script(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, kind TEXT NOT NULL, weight INT NOT NULL);
         CREATE INDEX events_by_weight ON events (weight)",
    )?;

    // A little of everything so every subsystem histogram has samples:
    // inserts (2PC + WAL), point selects (DBT descents), a range scan, an
    // aggregate, an update and a delete.
    let insert = y.prepare("INSERT INTO events (kind, weight) VALUES (?, ?)")?;
    for id in 0..200i64 {
        insert.execute(params![format!("kind-{}", id % 5), id % 17])?;
    }
    let by_id = y.prepare("SELECT kind, weight FROM events WHERE id = ?")?;
    for id in 0..200i64 {
        by_id.execute(params![id + 1])?;
    }
    y.execute("SELECT COUNT(*) FROM events WHERE weight >= 10", &[])?;
    y.execute(
        "SELECT id, kind FROM events WHERE weight >= ? ORDER BY weight LIMIT 10",
        &[8.into()],
    )?;
    y.execute("UPDATE events SET weight = weight + 1 WHERE id <= 20", &[])?;
    y.execute("DELETE FROM events WHERE id > 190", &[])?;

    // EXPLAIN ANALYZE executes and reports per-operator work.
    let rs = y.execute("EXPLAIN ANALYZE SELECT kind FROM events WHERE id = 42", &[])?;
    println!("-- EXPLAIN ANALYZE SELECT kind FROM events WHERE id = 42");
    for row in &rs.rows {
        println!("{row:?}");
    }
    println!();

    let stats = y.db().stats();
    println!("-- metrics snapshot (counters + histograms)");
    println!("{}", stats.render_json());
    println!();
    println!("-- slow-op ring (sampled traces over the slow threshold)");
    println!("{}", stats.obs().slow_ring().dump_json());
    Ok(())
}
